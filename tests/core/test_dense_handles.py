"""Dense rank-resident handles, the prologue refresh hook, and weighted
edge-subset derivation.

Contracts under test:

* :meth:`TsSession.scatter_dense` / ``multiply(dense, gather=False)``
  chain dense operands through the SpMM path exactly like sparse
  :class:`DistHandle` chains — bit-identical to the per-call
  :func:`ts_spmm`, zero driver bytes per multiply, charged round-trip
  under ``charge_driver=True``.
* ``multiply(prologue=...)`` hands rank programs a
  :class:`~repro.core.driver.ResidentOperand` whose ``refresh_values``
  (values-only ``Ac`` strip exchange) leaves the session bit-identical
  to one freshly built on the re-valued operand.
* ``derive_edge_subset(keep, values=...)`` refreshes values *and* masks,
  bit-identical to a fresh session on the masked re-valued matrix —
  weighted live-edge samples reuse prepared state.
"""

import numpy as np
import pytest

from repro.core import TsConfig, TsSession, ts_spgemm, ts_spmm
from repro.partition import DistDenseHandle, DistHandle
from repro.sparse import BOOL_AND_OR, CsrMatrix, mask_entries
from ..conftest import csr_from_dense, random_dense

N, D, P = 48, 6, 4


def bitwise_equal(a: CsrMatrix, b: CsrMatrix) -> bool:
    return (
        a.shape == b.shape
        and np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.data, b.data)
    )


@pytest.fixture
def square_a(rng):
    return csr_from_dense(random_dense(rng, N, N, 0.2))


@pytest.fixture
def dense_b(rng):
    return rng.random((N, D))


class TestDenseHandleChaining:
    @pytest.mark.parametrize("policy", ["hybrid", "local", "remote"])
    def test_chain_matches_per_call_spmm(self, square_a, dense_b, policy):
        config = TsConfig(mode_policy=policy)
        with TsSession(square_a, P, config=config) as session:
            handle = session.scatter_dense(dense_b)
            reference = dense_b
            for _ in range(3):
                mult = session.multiply(handle, gather=False)
                handle = mult.C
                assert isinstance(handle, DistDenseHandle)
                reference = ts_spmm(square_a, reference, P, config=config).C
                assert np.array_equal(handle.gather(), reference)

    def test_gather_true_returns_global_ndarray(self, square_a, dense_b):
        with TsSession(square_a, P) as session:
            h = session.scatter_dense(dense_b)
            resident = session.multiply(h, gather=False).C.gather()
            gathered = session.multiply(h, gather=True).C
            assert isinstance(gathered, np.ndarray)
            assert np.array_equal(resident, gathered)

    def test_driver_resident_ndarray_operand(self, square_a, dense_b):
        with TsSession(square_a, P) as session:
            got = session.multiply(dense_b).C
        want = ts_spmm(square_a, dense_b, P).C
        assert np.array_equal(got, want)

    def test_ts_spmm_delegates_to_session(self, square_a, dense_b):
        want = ts_spmm(square_a, dense_b, P).C
        with TsSession(square_a, P) as session:
            h = session.scatter_dense(dense_b)
            mult = ts_spmm(square_a, h, P, session=session, gather=False)
            assert isinstance(mult.C, DistDenseHandle)
            assert np.array_equal(mult.C.gather(), want)

    def test_ts_spmm_session_rank_mismatch(self, square_a, dense_b):
        with TsSession(square_a, P) as session:
            with pytest.raises(ValueError, match="ranks"):
                ts_spmm(square_a, dense_b, P + 1, session=session)

    def test_ts_spmm_session_config_mismatch_rejected(self, square_a, dense_b):
        """A session multiplies under its own config/machine; conflicting
        arguments must raise instead of being silently ignored."""
        from repro.mpi import ETHERNET_CLUSTER

        with TsSession(square_a, P) as session:
            with pytest.raises(ValueError, match="config"):
                ts_spmm(
                    square_a, dense_b, P, session=session,
                    config=TsConfig(mode_policy="local"),
                )
            with pytest.raises(ValueError, match="machine"):
                ts_spmm(
                    square_a, dense_b, P, session=session,
                    machine=ETHERNET_CLUSTER,
                )
            # matching (or omitted) settings are fine
            mult = ts_spmm(
                square_a, dense_b, P, session=session, config=session.config
            )
            assert np.array_equal(mult.C, ts_spmm(square_a, dense_b, P).C)

    def test_ts_spmm_per_call_rejects_gather_false(self, square_a, dense_b):
        with pytest.raises(ValueError, match="resident session"):
            ts_spmm(square_a, dense_b, P, gather=False)


class TestDenseHandleContract:
    def test_zero_driver_bytes_on_handle_chain(self, square_a, dense_b):
        with TsSession(square_a, P) as session:
            mult = session.multiply(session.scatter_dense(dense_b), gather=False)
            assert mult.diagnostics["driver_scatter_bytes"] == 0
            assert mult.diagnostics["driver_gather_bytes"] == 0
            phases = mult.report.phase_bytes()
            assert "scatter-B" not in phases
            assert "gather-C" not in phases

    def test_charge_driver_prices_dense_round_trip(self, square_a, dense_b):
        with TsSession(square_a, P) as session:
            mult = session.multiply(dense_b, charge_driver=True)
            # dense payloads: d float64 values per shipped row (the root's
            # own block stays put, so strictly less than the full matrix)
            expected = dense_b.nbytes * (P - 1) // P
            assert mult.diagnostics["driver_scatter_bytes"] == expected
            assert mult.diagnostics["driver_gather_bytes"] == expected

    def test_foreign_dense_handle_rejected(self, square_a, dense_b):
        with TsSession(square_a, P) as s1, TsSession(square_a, P) as s2:
            h = s1.scatter_dense(dense_b)
            with pytest.raises(ValueError, match="different session"):
                s2.multiply(h)

    def test_dense_needs_tiled_algorithm(self, square_a, dense_b):
        with TsSession(square_a, P, algorithm="naive") as session:
            with pytest.raises(ValueError, match="tiled"):
                session.multiply(dense_b)

    def test_dense_needs_arithmetic_semiring(self, rng, dense_b):
        a_bool = csr_from_dense(random_dense(rng, N, N, 0.2, dtype=np.bool_))
        with TsSession(a_bool, P, semiring=BOOL_AND_OR) as session:
            with pytest.raises(ValueError, match="arithmetic"):
                session.multiply(dense_b)

    def test_scatter_dense_shape_check(self, square_a):
        with TsSession(square_a, P) as session:
            with pytest.raises(ValueError, match="match A"):
                session.scatter_dense(np.zeros((N + 1, D)))

    def test_dense_chain_reuses_spmm_mode_table(self, square_a, dense_b):
        """The SpMM mode rule depends only on A, so from the second
        multiply on the cached table serves the whole symbolic phase."""
        with TsSession(square_a, P) as session:
            h = session.scatter_dense(dense_b)
            first = session.multiply(h, gather=False)
            assert first.diagnostics["plan_reused"] == 0
            second = session.multiply(first.C, gather=False)
            assert second.diagnostics["plan_reused"] == P

    def test_dense_epilogue_outputs_become_dense_handles(
        self, square_a, dense_b
    ):
        """A rank-local epilogue may return ndarray blocks; they come
        back as a DistDenseHandle (the embedding's dense Z twin)."""

        def epilogue(comm, c_local):
            return CsrMatrix.from_dense(c_local), 2.0 * c_local

        with TsSession(square_a, P) as session:
            mult = session.multiply(dense_b, epilogue=epilogue)
            sp, dn = mult.extra
            assert isinstance(sp, DistHandle)
            assert isinstance(dn, DistDenseHandle)
            assert np.array_equal(dn.gather(), 2.0 * mult.C)


class TestPrologueRefresh:
    @pytest.mark.parametrize("policy", ["hybrid", "local", "remote"])
    @pytest.mark.parametrize("reuse", [True, False], ids=["reuse", "fresh"])
    def test_refresh_values_bitwise_matches_fresh_session(
        self, rng, policy, reuse
    ):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        new_vals = rng.random(a.nnz) + 0.5
        a2 = CsrMatrix(a.shape, a.indptr, a.indices, new_vals, check=False)
        config = TsConfig(mode_policy=policy, reuse_plan=reuse)
        want = ts_spgemm(a2, b, P, config=config).C

        def prologue(comm, operand):
            lo, hi = operand.rows.range_of(comm.rank)
            operand.refresh_values(new_vals[a.indptr[lo] : a.indptr[hi]])

        with TsSession(a, P, config=config) as session:
            got = session.multiply(b, prologue=prologue).C
            assert bitwise_equal(got, want)
            # the refreshed values are resident: later multiplies reuse them
            again = session.multiply(b).C
            assert bitwise_equal(again, want)

    def test_refresh_values_charges_value_traffic(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))

        def prologue(comm, operand):
            operand.refresh_values(operand.local.data * 2.0)

        with TsSession(a, P) as session:
            mult = session.multiply(b, prologue=prologue)
            phases = mult.report.phase_bytes()
            # only the nnz values travel — the pattern is already resident
            assert 0 < phases["refresh-values"] <= a.data.nbytes

    def test_refresh_values_shape_check(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))

        def prologue(comm, operand):
            operand.refresh_values(np.zeros(operand.local.nnz + 1))

        with pytest.raises(Exception, match="refresh_values"):
            with TsSession(a, P) as session:
                session.multiply(b, prologue=prologue)


class TestWeightedDeriveEdgeSubset:
    @pytest.mark.parametrize("policy", ["hybrid", "local", "remote"])
    def test_values_refresh_matches_fresh_session(self, rng, policy):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        keep = rng.random(a.nnz) < 0.6
        weights = rng.random(a.nnz) + 0.25
        a_weighted = CsrMatrix(a.shape, a.indptr, a.indices, weights, check=False)
        config = TsConfig(mode_policy=policy)
        with TsSession(a, P, config=config) as parent:
            child = parent.derive_edge_subset(keep, values=weights)
            got = child.multiply(b).C
        with TsSession(mask_entries(a_weighted, keep), P, config=config) as fresh:
            want = fresh.multiply(b).C
        assert bitwise_equal(got, want)

    def test_without_values_keeps_parent_values(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        keep = rng.random(a.nnz) < 0.6
        with TsSession(a, P) as parent:
            got = parent.derive_edge_subset(keep).multiply(b).C
        want = ts_spgemm(mask_entries(a, keep), b, P).C
        assert bitwise_equal(got, want)

    def test_values_shape_validated(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        with TsSession(a, P) as parent:
            with pytest.raises(ValueError, match="values"):
                parent.derive_edge_subset(
                    np.ones(a.nnz, dtype=bool), values=np.ones(a.nnz + 1)
                )
