"""Correctness of the distributed SpMM variant (dense B)."""

import numpy as np
import pytest

from repro.core import TsConfig, ts_spmm
from ..conftest import csr_from_dense, random_dense

PS = [1, 2, 3, 4, 8]


def make_inputs(rng, n=24, d=6, density_a=0.2):
    a = csr_from_dense(random_dense(rng, n, n, density_a))
    b = rng.random((n, d))
    return a, b


class TestSpmmCorrectness:
    @pytest.mark.parametrize("p", PS)
    def test_matches_numpy(self, rng, p):
        a, b = make_inputs(rng)
        result = ts_spmm(a, b, p)
        np.testing.assert_allclose(result.C, a.to_dense() @ b, atol=1e-10)

    @pytest.mark.parametrize("policy", ["hybrid", "local", "remote"])
    def test_mode_policies_agree(self, rng, policy):
        a, b = make_inputs(rng, n=20, d=4)
        result = ts_spmm(a, b, 4, config=TsConfig(mode_policy=policy))
        np.testing.assert_allclose(result.C, a.to_dense() @ b, atol=1e-10)

    @pytest.mark.parametrize("width", [1, 2, 16])
    def test_tile_width_invariant(self, rng, width):
        a, b = make_inputs(rng, n=30, d=5)
        result = ts_spmm(a, b, 6, config=TsConfig(tile_width_factor=width))
        np.testing.assert_allclose(result.C, a.to_dense() @ b, atol=1e-10)

    def test_tile_height_invariant(self, rng):
        a, b = make_inputs(rng, n=27, d=4)
        result = ts_spmm(a, b, 3, config=TsConfig(tile_height=2))
        np.testing.assert_allclose(result.C, a.to_dense() @ b, atol=1e-10)

    def test_zero_a(self, rng):
        from repro.sparse import CsrMatrix

        b = rng.random((12, 3))
        result = ts_spmm(CsrMatrix.identity(12), b, 3)
        np.testing.assert_allclose(result.C, b)

    def test_shape_validation(self, rng):
        a, _ = make_inputs(rng, n=10)
        with pytest.raises(ValueError):
            ts_spmm(a, np.zeros((11, 3)), 2)

    def test_dense_row(self, rng):
        dense = random_dense(rng, 16, 16, 0.1)
        dense[5, :] = 2.0
        a = csr_from_dense(dense)
        b = rng.random((16, 4))
        result = ts_spmm(a, b, 4)
        np.testing.assert_allclose(result.C, dense @ b, atol=1e-10)


class TestSpmmVsSpgemmCosts:
    def test_spmm_ships_no_index_structure(self, rng):
        """For a fully dense B, SpMM must move fewer bytes than SpGEMM on
        the equivalent fully-dense sparse B (indices are pure overhead)."""
        from repro.core import ts_spgemm
        from repro.sparse import CsrMatrix

        n, d, p = 32, 8, 4
        a = csr_from_dense(random_dense(rng, n, n, 0.3))
        dense_b = rng.random((n, d)) + 0.1  # no zeros
        sparse_b = CsrMatrix.from_dense(dense_b)
        spmm_res = ts_spmm(a, dense_b, p)
        spgemm_res = ts_spgemm(a, sparse_b, p)
        assert spmm_res.comm_bytes() < spgemm_res.comm_bytes()

    def test_flops_counted(self, rng):
        a, b = make_inputs(rng, n=20, d=5)
        result = ts_spmm(a, b, 4)
        assert result.diagnostics["flops"] == a.nnz * 5
