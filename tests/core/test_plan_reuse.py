"""Cached-plan equivalence and amortization tests (persistent plans).

The contract of :mod:`repro.core.plan`: a multiply served by a reused
:class:`PreparedA` must be **bit-identical** to a fresh-plan multiply for
any sequence of ``B`` operands against the same ``A`` — while paying the
B-independent symbolic + tiling cost only once.  The suite drives
BFS-like (thinning boolean frontiers) and embedding-like (re-sparsified
float) ``B`` sequences over multiple semirings and all three mode
policies, then checks the amortization itself on the deterministic
virtual clocks and (smoke, with margin) on wall-clock.
"""

import time

import numpy as np
import pytest

from repro.core import (
    SETUP_PHASES,
    PreparedA,
    TsConfig,
    TsSession,
    prepare_multiply,
    replan,
    spmm_multiply,
    tiled_multiply,
    ts_spgemm,
    ts_spmm,
)
from repro.core.symbolic import build_symbolic_plan
from repro.mpi import run_spmd
from repro.partition import DistSparseMatrix
from repro.sparse import (
    BOOL_AND_OR,
    MIN_PLUS,
    PLUS_TIMES,
    ColumnStrips,
    CsrMatrix,
    random_csr,
    row_topk,
)
from ..conftest import csr_from_dense, random_dense

N, D, P = 48, 6, 4

#: Modelled per-multiply setup work: the phases a prepared plan amortizes.
PLAN_PHASES = ("prepare", "tiling", "symbolic")


def bitwise_equal(a: CsrMatrix, b: CsrMatrix) -> bool:
    """Exact structural and value equality (no float tolerance)."""
    return (
        a.shape == b.shape
        and np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.data, b.data)
    )


def bfs_like_sequence(rng, n, d, levels=4):
    """Thinning boolean frontiers: density spikes then decays (Fig 12a)."""
    out = []
    for density in (0.3, 0.5, 0.12, 0.03)[:levels]:
        out.append(csr_from_dense(random_dense(rng, n, d, density, dtype=np.bool_)))
    return out


def embedding_like_sequence(rng, n, d, epochs=3, keep=2):
    """Re-sparsified float embeddings: top-k rows of drifting dense Z."""
    return [
        row_topk(csr_from_dense(rng.standard_normal((n, d))), keep)
        for _ in range(epochs)
    ]


def setup_compute(report) -> float:
    """Max-over-ranks modelled compute seconds in the plan phases."""
    worst = 0.0
    for rs in report.rank_stats:
        t = sum(
            ps.compute_time
            for name, ps in rs.phases.items()
            if name in PLAN_PHASES
        )
        worst = max(worst, t)
    return worst


class TestCachedPlanEquivalence:
    @pytest.mark.parametrize("policy", ["hybrid", "local", "remote"])
    @pytest.mark.parametrize(
        "semiring,sequence",
        [
            (BOOL_AND_OR, "bfs"),
            (PLUS_TIMES, "embedding"),
            (MIN_PLUS, "embedding"),
        ],
    )
    def test_session_bitwise_matches_fresh(self, rng, policy, semiring, sequence):
        a = csr_from_dense(random_dense(rng, N, N, 0.15, dtype=semiring.dtype))
        bs = (
            bfs_like_sequence(rng, N, D)
            if sequence == "bfs"
            else embedding_like_sequence(rng, N, D)
        )
        if semiring is BOOL_AND_OR:
            bs = [b.astype(np.bool_) for b in bs]
        else:
            bs = [b.astype(semiring.dtype) for b in bs]
        config = TsConfig(mode_policy=policy)
        session = TsSession(a, P, semiring=semiring, config=config)
        for b in bs:
            fresh = ts_spgemm(a, b, P, semiring=semiring, config=config)
            reused = session.multiply(b)
            assert bitwise_equal(reused.C, fresh.C)
            assert reused.diagnostics["plan_reused"] == P
            if policy != "hybrid":
                # forced policies need no B-dependent pattern products
                assert reused.diagnostics["symbolic_products"] == 0
            else:
                assert (
                    reused.diagnostics["symbolic_products"]
                    == fresh.diagnostics["symbolic_products"]
                )

    def test_reuse_plan_off_matches_too(self, rng):
        """The ablation path (fresh plan inside a resident session) is
        equally exact — and reports no plan reuse."""
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        config = TsConfig(reuse_plan=False)
        session = TsSession(a, P, config=config)
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        fresh = ts_spgemm(a, b, P, config=config)
        reused = session.multiply(b)
        assert bitwise_equal(reused.C, fresh.C)
        assert reused.diagnostics["plan_reused"] == 0

    @pytest.mark.parametrize("width,height", [(1, None), (2, 7)])
    def test_nondefault_tiling_equivalence(self, rng, width, height):
        a = csr_from_dense(random_dense(rng, 30, 30, 0.2))
        config = TsConfig(tile_width_factor=width, tile_height=height)
        session = TsSession(a, 3, config=config)
        for density in (0.5, 0.1):
            b = csr_from_dense(random_dense(rng, 30, 5, density))
            fresh = ts_spgemm(a, b, 3, config=config)
            assert bitwise_equal(session.multiply(b).C, fresh.C)

    def test_naive_session_matches_and_caches_requests(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        session = TsSession(a, P, algorithm="naive")
        for density in (0.4, 0.1):
            b = csr_from_dense(random_dense(rng, N, D, density))
            fresh = ts_spgemm(a, b, P, algorithm="naive")
            reused = session.multiply(b)
            assert bitwise_equal(reused.C, fresh.C)
        # the request round ran exactly once: the second multiply's
        # report shows no request-indices traffic at all
        second = session.multiply(csr_from_dense(random_dense(rng, N, D, 0.3)))
        assert second.report.phase_bytes().get("request-indices", 0) == 0
        fresh_report = ts_spgemm(
            a, csr_from_dense(random_dense(rng, N, D, 0.3)), P, algorithm="naive"
        ).report
        assert fresh_report.phase_bytes().get("request-indices", 0) > 0

    def test_update_operand_values_only(self, rng):
        """Same pattern, new values: the session refreshes numeric state
        (blocks, bools, strips) and stays bit-exact vs a fresh run."""
        dense = random_dense(rng, N, N, 0.2)
        a1 = csr_from_dense(dense)
        session = TsSession(a1, P)
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        assert bitwise_equal(session.multiply(b).C, ts_spgemm(a1, b, P).C)
        # perturb values on the identical pattern
        a2 = CsrMatrix(a1.shape, a1.indptr, a1.indices, a1.data * 3.5, check=False)
        session.update_operand(a2)
        assert bitwise_equal(session.multiply(b).C, ts_spgemm(a2, b, P).C)

    def test_update_operand_pattern_change_falls_back(self, rng):
        a1 = csr_from_dense(random_dense(rng, N, N, 0.2))
        a2 = csr_from_dense(random_dense(rng, N, N, 0.25))
        session = TsSession(a1, P)
        session.update_operand(a2)  # different pattern: full re-setup
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        assert bitwise_equal(session.multiply(b).C, ts_spgemm(a2, b, P).C)

    def test_prepared_config_mismatch_rejected(self, rng):
        a = csr_from_dense(random_dense(rng, 20, 20, 0.3))
        b = csr_from_dense(random_dense(rng, 20, 4, 0.5))

        def program(comm):
            dist_a = DistSparseMatrix.scatter_rows(comm, a)
            dist_a.build_column_copy()
            dist_b = DistSparseMatrix.scatter_rows(comm, b)
            prepared = prepare_multiply(dist_a, TsConfig(tile_height=5))
            tiled_multiply(
                dist_a, dist_b, PLUS_TIMES, TsConfig(tile_height=9), prepared=prepared
            )

        from repro.mpi.errors import RankError

        with pytest.raises(RankError, match="different TsConfig"):
            run_spmd(2, program)

    def test_spmm_prepared_equivalence(self, rng):
        """The SpMM mode table is fully B-independent: the prepared path
        skips the symbolic phase outright and output is identical."""
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b1 = rng.standard_normal((N, D))
        b2 = rng.standard_normal((N, D))

        def program(comm):
            from repro.partition.distmat import DistDenseMatrix

            dist_a = DistSparseMatrix.scatter_rows(comm, a)
            dist_a.build_column_copy()
            prepared = prepare_multiply(dist_a, TsConfig())
            outs = []
            for b in (b1, b2):
                dist_b = DistDenseMatrix.scatter_rows(comm, b)
                fresh, _ = spmm_multiply(dist_a, dist_b, TsConfig())
                cached, _ = spmm_multiply(
                    dist_a, dist_b, TsConfig(), prepared=prepared
                )
                outs.append((fresh.local, cached.local))
            return outs, prepared.spmm_cache is not None

        result = run_spmd(P, program)
        for outs, cache_filled in result.values:
            assert cache_filled
            for fresh_local, cached_local in outs:
                np.testing.assert_array_equal(fresh_local, cached_local)


class TestAmortization:
    """Deterministic virtual-clock checks of the charging rules."""

    def _workload(self):
        rng = np.random.default_rng(7)
        a = random_csr(256, 256, nnz_per_row=8, rng=rng)
        bs = [
            csr_from_dense(
                random_dense(rng, 256, 32, density, dtype=np.bool_)
            )
            for density in (0.05, 0.02, 0.01)
        ]
        return a.astype(np.bool_), bs

    def test_reused_multiply_skips_prepare_and_tiling(self):
        a, bs = self._workload()
        session = TsSession(a, 8, semiring=BOOL_AND_OR)
        for b in bs:
            report = session.multiply(b).report
            for rs in report.rank_stats:
                assert "prepare" not in rs.phases
                assert "tiling" not in rs.phases

    def test_modelled_setup_reduced_at_least_2x(self):
        """Acceptance gate: per-iteration symbolic+tiling+prepare time of
        a reused plan is >= 2x below the fresh path on the bench config
        (exact, from the virtual clocks)."""
        a, bs = self._workload()
        session = TsSession(a, 8, semiring=BOOL_AND_OR)
        for b in bs:
            fresh = setup_compute(
                ts_spgemm(a, b, 8, semiring=BOOL_AND_OR).report
            )
            reused = setup_compute(session.multiply(b).report)
            assert fresh > 0
            assert reused <= fresh / 2.0, (
                f"reused plan setup {reused:.3e}s vs fresh {fresh:.3e}s"
            )

    def test_forced_policy_replan_is_free(self):
        a, bs = self._workload()
        config = TsConfig(mode_policy="local")
        session = TsSession(a, 8, semiring=BOOL_AND_OR, config=config)
        report = session.multiply(bs[0]).report
        # no pattern products, no prepare, no tiling: zero plan compute
        assert setup_compute(report) == 0.0

    def test_msbfs_spmd_reuse_improves_modelled_runtime(self):
        from repro.apps import msbfs_spmd
        from repro.data import random_sources, rmat

        adj = rmat(256, 8, seed=12)
        sources = random_sources(256, 16, seed=3)
        on = msbfs_spmd(adj, sources, 4, config=TsConfig(reuse_plan=True))
        off = msbfs_spmd(adj, sources, 4, config=TsConfig(reuse_plan=False))
        assert on.visited.equal(off.visited)
        assert on.levels == off.levels >= 3
        assert on.total_runtime < off.total_runtime

    def test_msbfs_spmd_per_level_comm_bytes_match_registry(self):
        """Satellite: the SPMD trace now reports real per-level phase
        bytes (was a 0 placeholder) and matches the registry path."""
        from repro.apps import msbfs, msbfs_spmd
        from repro.data import erdos_renyi, random_sources

        adj = erdos_renyi(80, 4, seed=5)
        sources = random_sources(80, 6, seed=6)
        resident = msbfs_spmd(adj, sources, 4)
        driver = msbfs(adj, sources, 4)
        assert resident.levels == driver.levels
        assert sum(it.comm_bytes for it in resident.iterations) > 0
        for got, want in zip(resident.iterations, driver.iterations):
            assert got.comm_bytes == want.comm_bytes
            assert got.comm_time > 0


class TestPlanReusePerfSmoke:
    """Wall-clock smoke in the PR 1 style: measured, with margin.

    Iterations after the first must spend measurably less wall time in
    plan construction than iteration 1.  Measured ~2.5x locally (the
    replan side is floored by the mode all-to-all's thread sync, which
    both paths pay); the 1.4x floor keeps headroom for CI jitter while
    still catching a regression that silently rebuilds the static state
    per multiply.
    """

    MIN_SPEEDUP = 1.4
    ITERS = 3

    def test_replan_beats_fresh_plan_wall_clock(self):
        rng = np.random.default_rng(0)
        a = random_csr(4096, 4096, nnz_per_row=8, rng=rng).astype(np.bool_)
        bs = [
            csr_from_dense(
                random_dense(np.random.default_rng(i), 4096, 32, 0.005, np.bool_)
            )
            for i in range(self.ITERS)
        ]
        config = TsConfig()

        def program(comm):
            dist_a = DistSparseMatrix.scatter_rows(comm, a)
            dist_a.build_column_copy()
            dist_bs = [
                DistSparseMatrix(comm, dist_a.rows,
                                 DistSparseMatrix.scatter_rows(comm, b).local, 32)
                for b in bs
            ]
            # warm both paths once (imports, caches)
            prepared = prepare_multiply(dist_a, config)
            prepared.ensure_strips(dist_a)
            replan(prepared, dist_a, dist_bs[0])

            t_fresh = 0.0
            for dist_b in dist_bs:
                t0 = time.perf_counter()
                build_symbolic_plan(dist_a, dist_b, BOOL_AND_OR, config)
                ColumnStrips(dist_a.local, dist_a.rows.ranges)
                t_fresh += time.perf_counter() - t0
            t_reuse = 0.0
            for dist_b in dist_bs:
                t0 = time.perf_counter()
                replan(prepared, dist_a, dist_b)
                t_reuse += time.perf_counter() - t0
            return t_fresh, t_reuse

        best_fresh, best_reuse = float("inf"), float("inf")
        for _ in range(2):  # best-of to shrug off scheduler noise
            result = run_spmd(4, program)
            best_fresh = min(best_fresh, max(v[0] for v in result.values))
            best_reuse = min(best_reuse, max(v[1] for v in result.values))
        speedup = best_fresh / best_reuse
        assert speedup >= self.MIN_SPEEDUP, (
            f"replan is only {speedup:.2f}x faster than fresh planning "
            f"({best_reuse * 1e3:.1f} ms vs {best_fresh * 1e3:.1f} ms over "
            f"{self.ITERS} iterations); expected >= {self.MIN_SPEEDUP}x"
        )
