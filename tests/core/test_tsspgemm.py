"""Correctness of the distributed TS-SpGEMM algorithms vs serial reference."""

import numpy as np
import pytest

from repro.core import TsConfig, ts_spgemm
from repro.sparse import BOOL_AND_OR, MIN_PLUS, PLUS_TIMES, CsrMatrix, spgemm
from ..conftest import csr_from_dense, random_dense

PS = [1, 2, 3, 4, 8]


def make_inputs(rng, n=24, d=6, density_a=0.15, density_b=0.3, dtype=np.float64):
    a = csr_from_dense(random_dense(rng, n, n, density_a, dtype=dtype))
    b = csr_from_dense(random_dense(rng, n, d, density_b, dtype=dtype))
    return a, b


class TestTiledCorrectness:
    @pytest.mark.parametrize("p", PS)
    def test_matches_serial_arithmetic(self, rng, p):
        a, b = make_inputs(rng)
        expected, _ = spgemm(a, b, PLUS_TIMES)
        result = ts_spgemm(a, b, p)
        assert result.C.equal(expected)

    @pytest.mark.parametrize("p", [1, 3, 4])
    def test_matches_serial_bool(self, rng, p):
        a, b = make_inputs(rng, dtype=np.bool_)
        expected, _ = spgemm(a, b, BOOL_AND_OR)
        result = ts_spgemm(a, b, p, semiring=BOOL_AND_OR)
        assert result.C.equal(expected)

    @pytest.mark.parametrize("p", [2, 4])
    def test_matches_serial_min_plus(self, rng, p):
        a, b = make_inputs(rng)
        expected, _ = spgemm(a, b, MIN_PLUS)
        result = ts_spgemm(a, b, p, semiring=MIN_PLUS)
        assert result.C.equal(expected)

    @pytest.mark.parametrize(
        "policy", ["hybrid", "local", "remote"]
    )
    @pytest.mark.parametrize("p", [2, 4])
    def test_all_mode_policies_agree(self, rng, p, policy):
        a, b = make_inputs(rng, n=20, d=5)
        expected, _ = spgemm(a, b, PLUS_TIMES)
        cfg = TsConfig(mode_policy=policy)
        result = ts_spgemm(a, b, p, config=cfg)
        assert result.C.equal(expected)

    @pytest.mark.parametrize("width", [1, 2, 4, 16])
    def test_tile_width_does_not_change_result(self, rng, width):
        a, b = make_inputs(rng, n=30, d=4)
        expected, _ = spgemm(a, b, PLUS_TIMES)
        cfg = TsConfig(tile_width_factor=width)
        result = ts_spgemm(a, b, 6, config=cfg)
        assert result.C.equal(expected)

    @pytest.mark.parametrize("height", [1, 2, 5, 1000])
    def test_tile_height_does_not_change_result(self, rng, height):
        a, b = make_inputs(rng, n=27, d=4)
        expected, _ = spgemm(a, b, PLUS_TIMES)
        cfg = TsConfig(tile_height=height)
        result = ts_spgemm(a, b, 3, config=cfg)
        assert result.C.equal(expected)

    def test_empty_b(self, rng):
        a, _ = make_inputs(rng, n=12)
        b = CsrMatrix.empty((12, 4))
        result = ts_spgemm(a, b, 3)
        assert result.C.nnz == 0 and result.C.shape == (12, 4)

    def test_empty_a(self, rng):
        _, b = make_inputs(rng, n=12, d=4)
        a = CsrMatrix.empty((12, 12))
        result = ts_spgemm(a, b, 3)
        assert result.C.nnz == 0

    def test_dense_row_in_a(self, rng):
        # the load-imbalance scenario the paper highlights (Fig 1)
        dense = random_dense(rng, 16, 16, 0.1)
        dense[3, :] = 1.0  # fully dense row
        a = csr_from_dense(dense)
        b = csr_from_dense(random_dense(rng, 16, 5, 0.4))
        expected, _ = spgemm(a, b, PLUS_TIMES)
        result = ts_spgemm(a, b, 4)
        assert result.C.equal(expected)

    def test_identity_a_returns_b(self, rng):
        n, d = 15, 4
        a = CsrMatrix.identity(n)
        b = csr_from_dense(random_dense(rng, n, d, 0.4))
        result = ts_spgemm(a, b, 3)
        assert result.C.equal(b)

    def test_shape_validation(self, rng):
        a = csr_from_dense(random_dense(rng, 5, 6, 0.5))  # not square
        b = csr_from_dense(random_dense(rng, 6, 2, 0.5))
        with pytest.raises(ValueError):
            ts_spgemm(a, b, 2)

    def test_unknown_algorithm(self, rng):
        a, b = make_inputs(rng, n=8, d=2)
        with pytest.raises(ValueError):
            ts_spgemm(a, b, 2, algorithm="magic")

    def test_p_larger_than_n(self, rng):
        a, b = make_inputs(rng, n=6, d=3)
        expected, _ = spgemm(a, b, PLUS_TIMES)
        result = ts_spgemm(a, b, 8)  # some ranks own zero rows
        assert result.C.equal(expected)


class TestNaiveCorrectness:
    @pytest.mark.parametrize("p", PS)
    def test_matches_serial(self, rng, p):
        a, b = make_inputs(rng)
        expected, _ = spgemm(a, b, PLUS_TIMES)
        result = ts_spgemm(a, b, p, algorithm="naive")
        assert result.C.equal(expected)

    @pytest.mark.parametrize("p", [2, 4])
    def test_bool_semiring(self, rng, p):
        a, b = make_inputs(rng, dtype=np.bool_)
        expected, _ = spgemm(a, b, BOOL_AND_OR)
        result = ts_spgemm(a, b, p, semiring=BOOL_AND_OR, algorithm="naive")
        assert result.C.equal(expected)

    def test_naive_and_tiled_agree(self, rng):
        a, b = make_inputs(rng, n=32, d=8)
        r1 = ts_spgemm(a, b, 4, algorithm="naive")
        r2 = ts_spgemm(a, b, 4, algorithm="tiled")
        assert r1.C.equal(r2.C)


class TestDiagnosticsAndCosts:
    def test_diagnostics_count_tiles(self, rng):
        a, b = make_inputs(rng, n=24)
        result = ts_spgemm(a, b, 4)
        d = result.diagnostics
        total = (
            d["local_tiles"] + d["remote_tiles"] + d["empty_tiles"]
            + d["diagonal_tiles"]
        )
        # p*p subtiles with default h = n/p (one row tile per block)
        assert total == 16
        assert d["diagonal_tiles"] == 4

    def test_forced_local_has_no_remote(self, rng):
        a, b = make_inputs(rng)
        result = ts_spgemm(a, b, 4, config=TsConfig(mode_policy="local"))
        assert result.diagnostics["remote_tiles"] == 0

    def test_forced_remote_has_no_local(self, rng):
        a, b = make_inputs(rng)
        result = ts_spgemm(a, b, 4, config=TsConfig(mode_policy="remote"))
        assert result.diagnostics["local_tiles"] == 0

    def test_runtime_positive_and_decomposes(self, rng):
        a, b = make_inputs(rng)
        result = ts_spgemm(a, b, 4)
        assert result.runtime > 0
        assert 0 < result.multiply_time <= result.runtime
        assert result.comm_time <= result.multiply_time

    def test_hybrid_bytes_at_most_local_only(self, rng):
        """Mode selection must never move more bytes than local-only.

        This is the paper's Fig 6 claim; exact per-tile minimization makes
        it a hard invariant at tile granularity.
        """
        a, b = make_inputs(rng, n=40, d=6, density_a=0.2, density_b=0.5)
        hybrid = ts_spgemm(a, b, 4, config=TsConfig(mode_policy="hybrid"))
        local = ts_spgemm(a, b, 4, config=TsConfig(mode_policy="local"))
        assert hybrid.C.equal(local.C)
        assert hybrid.comm_bytes() <= local.comm_bytes()

    def test_narrow_tiles_reduce_peak_memory(self, rng):
        a, b = make_inputs(rng, n=48, d=8, density_a=0.25, density_b=0.6)
        wide = ts_spgemm(a, b, 8, config=TsConfig(tile_width_factor=8))
        narrow = ts_spgemm(a, b, 8, config=TsConfig(tile_width_factor=1))
        assert (
            narrow.diagnostics["peak_recv_b_bytes"]
            <= wide.diagnostics["peak_recv_b_bytes"]
        )

    def test_fetch_and_send_phases_recorded(self, rng):
        a, b = make_inputs(rng, n=32, d=6, density_a=0.3, density_b=0.6)
        result = ts_spgemm(a, b, 4)
        phases = result.report.phase_bytes()
        assert "fetch-B" in phases or "send-C" in phases

    def test_flops_match_expected_total(self, rng):
        a, b = make_inputs(rng, n=20, d=5)
        from repro.sparse import spgemm_flops

        result = ts_spgemm(a, b, 4)
        assert result.diagnostics["flops"] == spgemm_flops(a, b)
