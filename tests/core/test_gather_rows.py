"""Unit tests for the row pack/place helpers shared by the algorithms."""

import numpy as np
import pytest

from repro.core.gather_rows import (
    pack_dense_rows,
    pack_rows,
    place_dense_rows,
    place_rows,
)
from repro.sparse import CsrMatrix
from ..conftest import csr_from_dense, random_dense


class TestSparsePackPlace:
    def test_roundtrip(self, rng):
        dense = random_dense(rng, 8, 5, 0.4)
        mat = csr_from_dense(dense)
        ids = np.array([1, 4, 6])
        payload = pack_rows(mat, ids)
        placed = place_rows(8, payload, 5, mat.dtype)
        expected = np.zeros_like(dense)
        expected[ids] = dense[ids]
        np.testing.assert_allclose(placed.to_dense(), expected)

    def test_empty_request_is_none(self, rng):
        mat = csr_from_dense(random_dense(rng, 4, 3, 0.5))
        assert pack_rows(mat, np.array([], dtype=np.int64)) is None

    def test_place_none_gives_empty(self):
        placed = place_rows(6, None, 4, np.float64)
        assert placed.nnz == 0 and placed.shape == (6, 4)

    def test_place_rejects_out_of_range(self, rng):
        mat = csr_from_dense(random_dense(rng, 4, 3, 0.8))
        payload = pack_rows(mat, np.array([0, 1]))
        ids, rows = payload
        with pytest.raises(ValueError, match="out of range"):
            place_rows(1, (ids + 5, rows), 3, mat.dtype)

    def test_place_rejects_count_mismatch(self, rng):
        mat = csr_from_dense(random_dense(rng, 4, 3, 0.8))
        _, rows = pack_rows(mat, np.array([0, 1]))
        with pytest.raises(ValueError, match="row count"):
            place_rows(4, (np.array([0]), rows), 3, mat.dtype)

    def test_placed_block_validates(self, rng):
        dense = random_dense(rng, 10, 6, 0.3)
        mat = csr_from_dense(dense)
        ids = np.array([0, 3, 9])
        placed = place_rows(10, pack_rows(mat, ids), 6, mat.dtype)
        CsrMatrix(placed.shape, placed.indptr, placed.indices, placed.data, check=True)

    def test_unsorted_ids_rejected(self, rng):
        """Regression: the docstring promised strictly increasing row ids
        but nothing checked — an unsorted payload silently built a CSR
        whose indptr disagreed with the indices/data order."""
        mat = csr_from_dense(random_dense(rng, 8, 5, 0.9))
        ids, rows = pack_rows(mat, np.array([1, 4, 6]))
        shuffled = np.array([4, 1, 6])
        with pytest.raises(ValueError, match="strictly increasing"):
            place_rows(8, (shuffled, rows), 5, mat.dtype)

    def test_duplicate_ids_rejected(self, rng):
        """Duplicates previously *silently dropped* one row's counts from
        the indptr scatter while keeping its entries — a corrupt block."""
        mat = csr_from_dense(random_dense(rng, 8, 5, 0.9))
        ids, rows = pack_rows(mat, np.array([2, 5]))
        with pytest.raises(ValueError, match="strictly increasing"):
            place_rows(8, (np.array([5, 5]), rows), 5, mat.dtype)

    def test_sorted_ids_still_fine(self, rng):
        mat = csr_from_dense(random_dense(rng, 8, 5, 0.9))
        placed = place_rows(8, pack_rows(mat, np.array([0, 2, 7])), 5, mat.dtype)
        CsrMatrix(placed.shape, placed.indptr, placed.indices, placed.data, check=True)


class TestDensePackPlace:
    def test_roundtrip(self, rng):
        dense = rng.random((7, 3))
        ids = np.array([2, 5])
        payload = pack_dense_rows(dense, ids)
        placed = place_dense_rows(7, payload, 3)
        expected = np.zeros_like(dense)
        expected[ids] = dense[ids]
        np.testing.assert_allclose(placed, expected)

    def test_empty_and_none(self, rng):
        dense = rng.random((4, 2))
        assert pack_dense_rows(dense, np.array([], dtype=np.int64)) is None
        np.testing.assert_allclose(place_dense_rows(4, None, 2), np.zeros((4, 2)))

    def test_out_of_range_rejected(self, rng):
        dense = rng.random((4, 2))
        payload = pack_dense_rows(dense, np.array([0]))
        ids, rows = payload
        with pytest.raises(ValueError):
            place_dense_rows(2, (ids + 3, rows), 2)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32])
    def test_payload_dtype_preserved(self, rng, dtype):
        """Regression: the output block used to be hardcoded float64,
        silently up/down-casting shipped rows."""
        dense = (rng.random((6, 3)) * 10).astype(dtype)
        payload = pack_dense_rows(dense, np.array([1, 4]))
        placed = place_dense_rows(6, payload, 3)
        assert placed.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(placed[[1, 4]], dense[[1, 4]])

    def test_empty_payload_dtype_override(self):
        placed = place_dense_rows(3, None, 2, dtype=np.float32)
        assert placed.dtype == np.float32
        assert place_dense_rows(3, None, 2).dtype == np.float64
