"""Checkpoint/recovery: bit-identical results under injected faults.

The acceptance matrix of the resilience layer (docs/resilience.md): for
every fault point × checkpoint policy × communication-fusion setting the
application-level outputs (MS-BFS visited set, embedding Z) must be
**bit-identical** to the fault-free run — recovery restores exact state,
never approximately-equal state.

Fault-point indexing (see docs/resilience.md): task indices count every
session task including checkpoint tasks, so with checkpointing on the
first multiply is task 2 (0 = setup, 1 = setup-checkpoint); with
``checkpoint="off"`` (or a non-recoverable session) it is task 1.  A
fused multiply has exactly one collective probe per rank (``seq=0``).
"""

import numpy as np
import pytest

from repro.apps import msbfs, train_sparse_embedding
from repro.core import TsConfig
from repro.core.driver import TsSession
from repro.data import erdos_renyi, random_sources
from repro.mpi import DeadSessionError, FaultPlan, RankError, fault_env_seeds
from repro.sparse import CsrMatrix

P = 4
N = 48


def bitwise_equal(a: CsrMatrix, b: CsrMatrix) -> bool:
    return (
        a.shape == b.shape
        and np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.data, b.data)
    )


def _graph(seed=5):
    return erdos_renyi(N, 4, seed=seed)


def _A(seed=5):
    """Square sparse A with distinct per-edge values (value-refresh tests
    need values the identity-pattern graph weights would hide)."""
    adj = erdos_renyi(N, 4, seed=seed)
    rng = np.random.default_rng(seed + 100)
    data = rng.random(adj.nnz) + 0.5
    return CsrMatrix(adj.shape, adj.indptr, adj.indices, data, check=False)


def _operand(seed=7):
    rng = np.random.default_rng(seed)
    dense = np.where(rng.random((N, 6)) < 0.3, rng.random((N, 6)), 0.0)
    return CsrMatrix.from_dense(dense)


def _recoverable(**overrides) -> TsConfig:
    overrides.setdefault("retry_backoff", 0.0)
    return TsConfig(recoverable=True, **overrides)


def _fault_seeds():
    """CI sweep seeds: ``REPRO_FAULTS`` when set, else a small default."""
    return fault_env_seeds(default=(0, 1))


# ----------------------------------------------------------------------
# the acceptance matrix: MS-BFS bit-identity
# ----------------------------------------------------------------------
class TestMsbfsBitIdentity:
    @pytest.mark.parametrize("checkpoint", ["neighbor", "driver", "off"])
    @pytest.mark.parametrize("fuse", [True, False])
    @pytest.mark.parametrize("kind", ["transient", "crash"])
    def test_fault_matrix(self, checkpoint, fuse, kind):
        adj = _graph()
        sources = random_sources(N, 4, seed=1)
        mult_task = 1 if checkpoint == "off" else 2
        clean = msbfs(adj, sources, P, config=TsConfig(fuse_comm=fuse))
        faulted = msbfs(
            adj,
            sources,
            P,
            config=_recoverable(
                fuse_comm=fuse,
                checkpoint=checkpoint,
                faults=f"{kind}@1,task={mult_task},seq=0",
            ),
        )
        assert bitwise_equal(clean.visited, faulted.visited)
        assert sum(it.retries for it in faulted.iterations) == 1
        assert sum(it.recoveries for it in faulted.iterations) == 1
        # The clean run's trace shows no resilience activity.
        assert sum(it.retries for it in clean.iterations) == 0

    def test_setup_crash_retries_clean(self):
        """A crash during setup (task 0) has no state to restore — the
        retry rebuilds from the driver-held input."""
        adj = _graph()
        sources = random_sources(N, 4, seed=1)
        clean = msbfs(adj, sources, P)
        faulted = msbfs(
            adj, sources, P,
            config=_recoverable(faults="crash@0,task=0,seq=0"),
        )
        assert bitwise_equal(clean.visited, faulted.visited)

    @pytest.mark.parametrize("seed", _fault_seeds())
    def test_seeded_fault_sweep(self, seed):
        """Randomized plans (the CI ``REPRO_FAULTS`` sweep): a drawn point
        the program never reaches simply does not fire, so every seed is
        a legal member — bit-identity must hold regardless."""
        adj = _graph()
        sources = random_sources(N, 4, seed=2)
        plan = FaultPlan.seeded(
            seed, P, kinds=("transient", "crash"), n=2, max_task=5, max_seq=2
        )
        clean = msbfs(adj, sources, P)
        faulted = msbfs(
            adj, sources, P, config=_recoverable(faults=plan.render())
        )
        assert bitwise_equal(clean.visited, faulted.visited)


# ----------------------------------------------------------------------
# embedding bit-identity (prologue + epilogue + value refresh path)
# ----------------------------------------------------------------------
class TestEmbeddingBitIdentity:
    @pytest.mark.parametrize("checkpoint", ["neighbor", "driver"])
    @pytest.mark.parametrize("kind", ["transient", "crash"])
    def test_fault_in_first_epoch(self, checkpoint, kind):
        adj = _graph(seed=9)
        kwargs = dict(d=8, sparsity=0.5, epochs=3, seed=1)
        clean = train_sparse_embedding(adj, P, **kwargs)
        faulted = train_sparse_embedding(
            adj,
            P,
            config=_recoverable(
                checkpoint=checkpoint, faults=f"{kind}@1,task=2,seq=0"
            ),
            **kwargs,
        )
        assert bitwise_equal(clean.Z, faulted.Z)
        assert clean.accuracy == faulted.accuracy
        assert sum(e.retries for e in faulted.epochs) == 1


# ----------------------------------------------------------------------
# session-level mechanics
# ----------------------------------------------------------------------
class TestSessionRecovery:
    def test_checkpoint_and_recover_phase_accounting(self):
        """Replica traffic is charged under its own phases, conserved
        under the sanitizer, and a recovery ships one rank's blocks —
        strictly less than the full-session checkpoint."""
        config = _recoverable(
            checkpoint="neighbor",
            faults="transient@2,task=2,seq=0",
            sanitize=True,
        )
        session = TsSession(_A(), P, config=config)
        try:
            assert session.setup_report.phase_bytes().get("checkpoint", 0) > 0
            result = session.multiply(_operand(seed=8))
            assert result.report.phase_bytes().get("recover", 0) > 0
            assert result.diagnostics["retries"] == 1
            assert result.diagnostics["recoveries"] == 1
            assert session.checkpoint_bytes > 0
            assert 0 < session.recover_bytes < session.checkpoint_bytes
            assert [f.describe() for f in session.recovery_events]
        finally:
            session.close()

    def test_checkpoint_off_rebuilds_from_input(self):
        config = _recoverable(checkpoint="off", faults="crash@1,task=1,seq=0")
        session = TsSession(_A(), P, config=config)
        plain = TsSession(_A(), P, config=TsConfig())
        try:
            B = _operand(seed=8)
            want = plain.multiply(B).C
            got = session.multiply(B)
            assert bitwise_equal(want, got.C)
            assert got.diagnostics["recoveries"] == 1
            assert session.checkpoint_bytes == 0
        finally:
            session.close()
            plain.close()

    def test_recovered_session_keeps_working(self):
        """Post-recovery multiplies stay bit-identical — the restored
        state is not subtly stale."""
        config = _recoverable(faults="crash@3,task=2,seq=0")
        session = TsSession(_A(), P, config=config)
        plain = TsSession(_A(), P, config=TsConfig())
        try:
            for seed in (8, 11, 12):
                B = _operand(seed=seed)
                assert bitwise_equal(
                    plain.multiply(B).C, session.multiply(B).C
                )
            assert session.retries == 1
        finally:
            session.close()
            plain.close()

    def test_update_operand_then_recovery_uses_fresh_values(self):
        """A recovery after ``update_operand`` must restore the *updated*
        values, not the construction-time ones."""
        A = _A()
        A2 = CsrMatrix(A.shape, A.indptr, A.indices, A.data * 2.0, check=False)
        B = _operand(seed=8)

        clean = TsSession(A, P, config=_recoverable())
        try:
            clean.multiply(B)
            clean.update_operand(A2)
            next_task = clean._exec._tasks_run  # the faulted run's target
            want = clean.multiply(B).C
        finally:
            clean.close()

        faulted = TsSession(
            A, P,
            config=_recoverable(faults=f"crash@2,task={next_task},seq=0"),
        )
        try:
            faulted.multiply(B)
            faulted.update_operand(A2)
            got = faulted.multiply(B)
            assert bitwise_equal(want, got.C)
            assert got.diagnostics["retries"] == 1
        finally:
            faulted.close()

    def test_retry_budget_exhaustion_raises(self):
        config = _recoverable(max_retries=0, faults="crash@1,task=2,seq=0")
        session = TsSession(_A(), P, config=config)
        try:
            with pytest.raises(RankError):
                session.multiply(_operand(seed=8))
        finally:
            session.close()

    def test_diagnostics_only_on_recoverable_sessions(self):
        B = _operand(seed=8)
        plain = TsSession(_A(), P, config=TsConfig())
        rec = TsSession(_A(), P, config=_recoverable())
        try:
            base = plain.multiply(B)
            assert "retries" not in base.diagnostics
            result = rec.multiply(B)
            assert result.diagnostics["retries"] == 0
            assert result.diagnostics["recoveries"] == 0
            # Recoverable mode alone changes no numbers.
            assert bitwise_equal(base.C, result.C)
        finally:
            plain.close()
            rec.close()


# ----------------------------------------------------------------------
# derived sessions
# ----------------------------------------------------------------------
class TestDerivedSessions:
    def _keep_mask(self, A, seed=3):
        rng = np.random.default_rng(seed)
        return rng.random(A.nnz) < 0.7

    def test_derived_session_recovers_from_its_own_checkpoint(self):
        A = _A()
        B = _operand(seed=8)
        keep = self._keep_mask(A)

        clean_parent = TsSession(A, P, config=_recoverable())
        try:
            clean_child = clean_parent.derive_edge_subset(keep)
            next_task = clean_parent._exec._tasks_run
            want = clean_child.multiply(B).C
        finally:
            clean_parent.close()

        parent = TsSession(
            A, P,
            config=_recoverable(faults=f"crash@2,task={next_task},seq=0"),
        )
        try:
            child = parent.derive_edge_subset(keep)
            got = child.multiply(B)
            assert bitwise_equal(want, got.C)
            assert got.diagnostics["recoveries"] == 1
        finally:
            parent.close()

    def test_derived_session_without_checkpoint_cannot_recover(self):
        """checkpoint='off' recovery re-runs setup from the driver-held
        input — which a derived session does not have."""
        A = _A()
        keep = self._keep_mask(A)

        probe = TsSession(A, P, config=_recoverable(checkpoint="off"))
        try:
            probe.derive_edge_subset(keep)
            next_task = probe._exec._tasks_run
        finally:
            probe.close()

        parent = TsSession(
            A, P,
            config=_recoverable(
                checkpoint="off", faults=f"crash@2,task={next_task},seq=0"
            ),
        )
        try:
            child = parent.derive_edge_subset(keep)
            with pytest.raises(RuntimeError, match="derived"):
                child.multiply(_operand(seed=8))
        finally:
            parent.close()


# ----------------------------------------------------------------------
# dead-session follow-on UX
# ----------------------------------------------------------------------
class TestDeadSessionUx:
    def test_gather_after_abort_names_the_original_fault(self):
        # recoverable=False: injection kills the session (task 1 is the
        # first multiply — no checkpoint tasks without recoverable mode).
        config = TsConfig(faults="crash@1,task=1,seq=0")
        session = TsSession(_A(), P, config=config)
        try:
            handle = session.scatter(_operand(seed=8))
            with pytest.raises(RankError):
                session.multiply(handle, gather=False)
            with pytest.raises(DeadSessionError) as ei:
                handle.gather()
            assert "InjectedCrashFault" in ei.value.reason
            assert "re-create the session" in str(ei.value)
        finally:
            session.close()
