"""Distributed operand/result handles: correctness and zero driver traffic.

The contract of the handle path (:class:`repro.partition.DistHandle` +
``TsSession.multiply(..., gather=False)``): a chain of multiplies whose
intermediates never leave the ranks must be **bit-identical** to the
driver-gather path — for any semiring, kernel and mode policy — while
moving exactly zero bytes through the driver per multiply.  The registry
MS-BFS rides this path end-to-end (scatter-once → resident chain →
one final gather), so the same guarantees are asserted on whole
traversals against the ``driver_gather=True`` ablation and the serial
reference.
"""

import numpy as np
import pytest

from repro.apps import msbfs, reference_reachability
from repro.apps.msbfs import msbfs_spmd
from repro.core import TsConfig, TsSession, ts_spgemm
from repro.data import erdos_renyi, random_sources, rmat
from repro.partition import DistHandle
from repro.sparse import (
    BOOL_AND_OR,
    MIN_PLUS,
    PLUS_TIMES,
    CsrMatrix,
    mask_entries,
)
from ..conftest import csr_from_dense, random_dense

N, D, P = 48, 6, 4


def bitwise_equal(a: CsrMatrix, b: CsrMatrix) -> bool:
    return (
        a.shape == b.shape
        and np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.data, b.data)
    )


class TestHandleChaining:
    """C = A·B chained into the next B without leaving the ranks."""

    @pytest.mark.parametrize("policy", ["hybrid", "local", "remote"])
    @pytest.mark.parametrize(
        "semiring", [BOOL_AND_OR, PLUS_TIMES, MIN_PLUS], ids=lambda s: s.name
    )
    def test_chain_bitwise_matches_driver_chain(self, rng, policy, semiring):
        a = csr_from_dense(random_dense(rng, N, N, 0.15, dtype=semiring.dtype))
        b = csr_from_dense(
            random_dense(rng, N, D, 0.4, dtype=semiring.dtype)
        ).astype(semiring.dtype)
        config = TsConfig(mode_policy=policy)
        with TsSession(a, P, semiring=semiring, config=config) as session:
            handle = session.scatter(b)
            reference = b
            for _ in range(3):
                mult = session.multiply(handle, gather=False)
                handle = mult.C
                assert isinstance(handle, DistHandle)
                reference = ts_spgemm(
                    a, reference, P, semiring=semiring, config=config
                ).C
                assert bitwise_equal(handle.gather(), reference)

    @pytest.mark.parametrize("kernel", ["auto", "esc-vectorized", "hash", "spa"])
    def test_chain_across_kernels(self, rng, kernel):
        a = csr_from_dense(random_dense(rng, N, N, 0.2, dtype=np.bool_))
        b = csr_from_dense(random_dense(rng, N, D, 0.3, dtype=np.bool_))
        config = TsConfig(kernel=kernel)
        with TsSession(a, P, semiring=BOOL_AND_OR, config=config) as session:
            handle = session.multiply(session.scatter(b), gather=False).C
            fresh = ts_spgemm(a, b, P, semiring=BOOL_AND_OR, config=config)
            assert bitwise_equal(handle.gather(), fresh.C)

    def test_naive_algorithm_accepts_handles(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        with TsSession(a, P, algorithm="naive") as session:
            handle = session.multiply(session.scatter(b), gather=False).C
            fresh = ts_spgemm(a, b, P, algorithm="naive")
            assert bitwise_equal(handle.gather(), fresh.C)

    def test_gather_false_equals_gather_true(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        with TsSession(a, P) as session:
            h = session.scatter(b)
            c_resident = session.multiply(h, gather=False).C.gather()
            c_gathered = session.multiply(h, gather=True).C
            assert bitwise_equal(c_resident, c_gathered)


class TestDriverTraffic:
    """The point of the PR: handles move zero bytes through the driver."""

    def test_handle_multiply_reports_zero_driver_bytes(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        with TsSession(a, P) as session:
            mult = session.multiply(session.scatter(b), gather=False)
            assert mult.diagnostics["driver_scatter_bytes"] == 0
            assert mult.diagnostics["driver_gather_bytes"] == 0
            phases = mult.report.phase_bytes()
            assert "scatter-B" not in phases
            assert "gather-C" not in phases

    def test_charge_driver_ablation_charges_round_trip(self, rng):
        """With charge_driver=True a plain CsrMatrix operand pays the
        per-multiply root scatter and gather=True the root gather — the
        driver_gather ablation's cost."""
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        with TsSession(a, P) as session:
            mult = session.multiply(b, gather=True, charge_driver=True)
            assert mult.diagnostics["driver_scatter_bytes"] > 0
            assert mult.diagnostics["driver_gather_bytes"] > 0

    def test_default_accounting_matches_per_call_path(self, rng):
        """Without the ablation knob, a session multiply charges exactly
        like the per-call ts_spgemm path (pre-distributed convention) —
        so reuse_plan ablations compare like with like."""
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        with TsSession(a, P) as session:
            mult = session.multiply(b, gather=True)
            assert mult.diagnostics["driver_scatter_bytes"] == 0
            assert mult.diagnostics["driver_gather_bytes"] == 0
            fresh = ts_spgemm(a, b, P)
            assert mult.comm_bytes() == fresh.comm_bytes()
            assert bitwise_equal(mult.C, fresh.C)

    def test_multiply_traffic_identical_across_paths(self, rng):
        """Stripping the driver round-trip is *all* the handle path
        changes: the multiply's own wire traffic stays byte-identical."""
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        with TsSession(a, P) as session:
            via_handle = session.multiply(session.scatter(b), gather=False)
            via_driver = session.multiply(b, gather=True, charge_driver=True)
        driver_overhead = (
            via_driver.diagnostics["driver_scatter_bytes"]
            + via_driver.diagnostics["driver_gather_bytes"]
        )
        assert via_driver.comm_bytes() - driver_overhead == via_handle.comm_bytes()


class TestHandleSemantics:
    def test_foreign_handle_rejected(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        with TsSession(a, P) as s1, TsSession(a, P) as s2:
            handle = s1.scatter(b)
            with pytest.raises(ValueError, match="different session"):
                s2.multiply(handle)

    def test_scatter_validates_shape(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        with TsSession(a, P) as session:
            with pytest.raises(ValueError, match="rows"):
                session.scatter(csr_from_dense(random_dense(rng, N + 1, D, 0.4)))

    def test_handle_nnz_and_gather_roundtrip(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        with TsSession(a, P) as session:
            h = session.scatter(b)
            assert h.nnz == b.nnz
            assert h.shape == b.shape
            assert bitwise_equal(h.gather(), b)

    def test_apply_local_single_and_tuple_outputs(self, rng):
        from repro.sparse import ewise_add, pattern_difference

        a = csr_from_dense(random_dense(rng, N, N, 0.2, dtype=np.bool_))
        x = csr_from_dense(random_dense(rng, N, D, 0.3, dtype=np.bool_))
        y = csr_from_dense(random_dense(rng, N, D, 0.3, dtype=np.bool_))
        with TsSession(a, P, semiring=BOOL_AND_OR) as session:
            hx, hy = session.scatter(x), session.scatter(y)

            single, _ = session.apply_local(
                lambda comm, bx, by: ewise_add(bx, by, BOOL_AND_OR), hx, hy
            )
            assert bitwise_equal(single.gather(), ewise_add(x, y, BOOL_AND_OR))

            (diff, union), report = session.apply_local(
                lambda comm, bx, by: (
                    pattern_difference(bx, by),
                    ewise_add(bx, by, BOOL_AND_OR),
                ),
                hx,
                hy,
            )
            assert bitwise_equal(diff.gather(), pattern_difference(x, y))
            assert bitwise_equal(union.gather(), ewise_add(x, y, BOOL_AND_OR))
            # row-partitioned elementwise ops need zero communication
            assert report.total_bytes() == 0

    def test_closed_session_refuses_multiply(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        session = TsSession(a, P)
        h = session.scatter(b)
        session.close()
        assert session.closed
        with pytest.raises(RuntimeError, match="closed"):
            session.multiply(h)


class TestMsbfsOnHandles:
    """The registry MS-BFS path rides handles end-to-end by default."""

    @pytest.mark.parametrize("policy", ["hybrid", "local", "remote"])
    @pytest.mark.parametrize("kernel", ["auto", "esc-vectorized", "hash", "spa"])
    def test_bit_identical_visited_vs_driver_gather(self, policy, kernel):
        adj = rmat(128, 6, seed=7)
        sources = random_sources(128, 8, seed=3)
        config = TsConfig(mode_policy=policy, kernel=kernel)
        resident = msbfs(adj, sources, P, config=config)
        gathered = msbfs(adj, sources, P, config=config, driver_gather=True)
        assert bitwise_equal(resident.visited, gathered.visited)
        assert resident.levels == gathered.levels
        ref = reference_reachability(adj.astype(np.bool_), sources)
        assert bitwise_equal(resident.visited, ref)

    def test_naive_session_rides_handles_too(self):
        adj = erdos_renyi(64, 4, seed=9)
        sources = random_sources(64, 5, seed=1)
        resident = msbfs(adj, sources, P, algorithm="TS-SpGEMM-Naive")
        gathered = msbfs(
            adj, sources, P, algorithm="TS-SpGEMM-Naive", driver_gather=True
        )
        assert bitwise_equal(resident.visited, gathered.visited)

    def test_per_level_driver_bytes_zero_on_handle_path(self):
        adj = rmat(128, 6, seed=8)
        sources = random_sources(128, 8, seed=4)
        resident = msbfs(adj, sources, P)
        gathered = msbfs(adj, sources, P, driver_gather=True)
        for it in resident.iterations:
            assert it.driver_scatter_bytes == 0
            assert it.driver_gather_bytes == 0
        assert all(
            it.driver_scatter_bytes > 0 and it.driver_gather_bytes > 0
            for it in gathered.iterations
        )

    def test_per_level_comm_matches_spmd_reference(self):
        """The handle path's per-level trace still decomposes exactly like
        the single-program msbfs_spmd reference (the Fig 12 invariant)."""
        adj = erdos_renyi(80, 4, seed=5)
        sources = random_sources(80, 6, seed=6)
        resident = msbfs(adj, sources, P)
        spmd = msbfs_spmd(adj, sources, P)
        assert resident.levels == spmd.levels
        for got, want in zip(resident.iterations, spmd.iterations):
            assert got.comm_bytes == want.comm_bytes
            assert got.frontier_nnz == want.frontier_nnz

    def test_driver_gather_without_capable_session_rejected(self):
        """The ablation needs a handle-capable session to ablate; a
        silent no-op (zero driver bytes reported for a path that never
        measured them) would mislead."""
        adj = erdos_renyi(48, 3, seed=6)
        sources = random_sources(48, 4, seed=1)
        with pytest.raises(ValueError, match="handle-capable"):
            msbfs(
                adj, sources, P, driver_gather=True,
                config=TsConfig(reuse_plan=False),
            )
        with pytest.raises(ValueError, match="handle-capable"):
            msbfs(adj, sources, 4, algorithm="SUMMA-2D", driver_gather=True)

    def test_modelled_time_improves_vs_driver_gather(self):
        adj = rmat(256, 8, seed=10)
        sources = random_sources(256, 16, seed=2)
        resident = msbfs(adj, sources, P)
        gathered = msbfs(adj, sources, P, driver_gather=True)
        assert resident.total_runtime < gathered.total_runtime

    def test_summa_session_like_for_like(self):
        """Fig 12(d)'s baseline now amortizes its setup through a
        resident session as well — results unchanged."""
        adj = erdos_renyi(48, 3, seed=7)
        sources = random_sources(48, 4, seed=4)
        result = msbfs(adj, sources, 4, algorithm="SUMMA-2D")
        ref = reference_reachability(adj.astype(np.bool_), sources)
        assert bitwise_equal(result.visited, ref)
        off = msbfs(
            adj, sources, 4, algorithm="SUMMA-2D",
            config=TsConfig(reuse_plan=False),
        )
        assert bitwise_equal(result.visited, off.visited)


class TestDerivedEdgeSubsetSessions:
    """Influence satellite: per-sample sessions masked from the full graph."""

    @pytest.mark.parametrize("policy", ["hybrid", "local", "remote"])
    def test_derived_multiply_bit_identical(self, rng, policy):
        a = rmat(160, 6, seed=11).astype(np.bool_)
        config = TsConfig(mode_policy=policy)
        with TsSession(a, P, semiring=BOOL_AND_OR, config=config) as base:
            for draw in range(3):
                keep = rng.random(a.nnz) < 0.5
                live = mask_entries(a, keep)
                derived = base.derive_edge_subset(keep)
                b = csr_from_dense(
                    random_dense(rng, 160, D, 0.2, dtype=np.bool_)
                )
                got = derived.multiply(b)
                want = ts_spgemm(live, b, P, semiring=BOOL_AND_OR, config=config)
                assert bitwise_equal(got.C, want.C), (policy, draw)

    def test_derived_msbfs_matches_fresh_session(self, rng):
        a = rmat(128, 8, seed=12)
        a_bool = a.astype(np.bool_)
        sources = random_sources(128, 6, seed=5)
        keep = rng.random(a.nnz) < 0.4
        live = mask_entries(a, keep)
        with TsSession(a_bool, P, semiring=BOOL_AND_OR) as base:
            derived = base.derive_edge_subset(keep)
            via_derived = msbfs(live, sources, P, session=derived)
        via_fresh = msbfs(live, sources, P)
        assert bitwise_equal(via_derived.visited, via_fresh.visited)

    def test_derived_session_skips_reprepare_traffic(self, rng):
        """Derivation is a rank-local masking pass: no scatter, no Ac
        all-to-all — only the forced-policy mode exchange may appear."""
        a = rmat(128, 6, seed=13).astype(np.bool_)
        with TsSession(a, P, semiring=BOOL_AND_OR) as base:
            keep = rng.random(a.nnz) < 0.5
            derived = base.derive_edge_subset(keep)
            phases = derived.setup_report.phase_bytes()
            assert phases.get("build-Ac", 0) == 0
            assert base.setup_report.phase_bytes()["build-Ac"] > 0

    def test_keep_mask_length_validated(self, rng):
        a = rmat(64, 4, seed=14).astype(np.bool_)
        with TsSession(a, 2, semiring=BOOL_AND_OR) as base:
            with pytest.raises(ValueError, match="stored edges"):
                base.derive_edge_subset(np.ones(a.nnz + 1, dtype=bool))

    def test_influence_reuse_plan_ablation_identical(self):
        from repro.apps import influence_maximization

        adj = rmat(96, 6, seed=15)
        on = influence_maximization(
            adj, k=2, p=2, probability=0.3, samples=3, seed=4,
            config=TsConfig(reuse_plan=True),
        )
        off = influence_maximization(
            adj, k=2, p=2, probability=0.3, samples=3, seed=4,
            config=TsConfig(reuse_plan=False),
        )
        assert on.seeds == off.seeds
        assert on.spread_estimates == pytest.approx(off.spread_estimates)
