"""Fused communication rounds: equivalence, accounting and ablation.

The contract of ``TsConfig.fuse_comm``: collapsing the symbolic mode
exchange, every tile round's ``fetch-B``/``send-C`` and a fused-capable
prologue's fetch (the embedding's distributed SDDMM) into one combined
multi-section all-to-all must be **observationally free** except for
time — bit-identical outputs across kernels, mode policies and refresh
periods, exact per-phase byte conservation (fused section bytes == the
separate exchanges' bytes) — while the all-to-all *round count* (the
α·rounds latency term) drops.
"""

import numpy as np
import pytest

from repro.apps import msbfs, train_sparse_embedding
from repro.apps.msbfs import msbfs_spmd
from repro.core import (
    FUSED_SECTION_PHASES,
    TsConfig,
    TsSession,
    ts_spgemm,
    ts_spmm,
)
from repro.mpi import run_spmd
from repro.mpi.costmodel import PERLMUTTER
from repro.mpi.errors import CollectiveMismatchError, CommMismatchError, RankError
from repro.sparse import BOOL_AND_OR, MIN_PLUS, PLUS_TIMES, CsrMatrix

from ..conftest import csr_from_dense, random_dense

N, D, P = 48, 6, 4



def bitwise_equal(a: CsrMatrix, b: CsrMatrix) -> bool:
    return (
        a.shape == b.shape
        and np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.data, b.data)
    )


def config_pair(**kwargs):
    return TsConfig(fuse_comm=True, **kwargs), TsConfig(fuse_comm=False, **kwargs)


def assert_bytes_conserved(rep_on, rep_off):
    """Fused per-phase bytes == sum of the unfused section bytes."""
    pb_on, pb_off = rep_on.phase_bytes(), rep_off.phase_bytes()
    for phase in FUSED_SECTION_PHASES:
        assert pb_on.get(phase, 0) == pb_off.get(phase, 0), phase
    # the fused-round phase itself carries no bytes (they live on the
    # sections), so whole-run traffic is conserved too
    assert pb_on.get("fused-round", 0) == 0
    assert sum(pb_on.values()) == sum(pb_off.values())


# ----------------------------------------------------------------------
# comm-layer unit semantics
# ----------------------------------------------------------------------
class TestAlltoallFused:
    def test_section_bytes_match_separate_exchanges(self):
        def fused(comm):
            a = [np.arange(comm.rank + 2, dtype=np.int64)] * comm.size
            b = [np.ones(3 * (comm.rank + 1))] * comm.size
            with comm.phase("combined"):
                received, metas = comm.alltoall_fused(
                    [("alpha", a), ("beta", b)], meta=comm.rank == 2
                )
            assert metas == [False, False, True, False]
            return received

        def separate(comm):
            a = [np.arange(comm.rank + 2, dtype=np.int64)] * comm.size
            b = [np.ones(3 * (comm.rank + 1))] * comm.size
            with comm.phase("alpha"):
                ra = comm.alltoall(a)
            with comm.phase("beta"):
                rb = comm.alltoall(b)
            return {"alpha": ra, "beta": rb}

        res_f = run_spmd(P, fused)
        res_s = run_spmd(P, separate)
        for name in ("alpha", "beta"):
            assert (
                res_f.report.phase_bytes()[name]
                == res_s.report.phase_bytes()[name]
                > 0
            )
            for rank in range(P):
                for x, y in zip(res_f[rank][name], res_s[rank][name]):
                    assert np.array_equal(x, y)
        # one round instead of two, counted under the call-site phase
        assert res_f.report.alltoall_rounds() == 1
        assert res_s.report.alltoall_rounds() == 2
        assert res_f.report.phase_rounds() == {"combined": 1}

    def test_one_latency_many_bandwidth_terms(self):
        m = PERLMUTTER
        sections = [(1000, 2000), (512, 64), (0, 0)]
        want = (
            m.alpha
            + (P - 1) * m.gamma
            + m.beta * (2000 + 512)
        )
        assert m.alltoallv_fused(P, sections) == pytest.approx(want)
        # fused is cheaper than the separate rounds by (k-1) latency
        # terms, and never cheaper in bandwidth
        separate = sum(m.alltoallv(P, s, r) for s, r in sections)
        assert m.alltoallv_fused(P, sections) < separate
        assert m.alltoallv_fused(P, sections) >= m.beta * (2000 + 512)
        assert m.alltoallv_fused(1, sections) == 0.0

    def test_mismatched_section_names_raise(self):
        def program(comm):
            name = "x" if comm.rank == 0 else "y"
            comm.alltoall_fused([(name, [None] * comm.size)])

        # Plain mode: the in-collective name check raises inside the rank
        # (RankError).  Sanitize mode catches the divergence one step
        # earlier as a structured cross-rank CollectiveMismatchError.
        with pytest.raises((RankError, CollectiveMismatchError)):
            run_spmd(P, program)

    def test_bad_section_shape_raises(self):
        def program(comm):
            comm.alltoall_fused([("x", [None] * (comm.size + 1))])

        with pytest.raises(RankError) as exc:
            run_spmd(P, program)
        assert isinstance(exc.value.__cause__, CommMismatchError)


# ----------------------------------------------------------------------
# one-shot multiplies
# ----------------------------------------------------------------------
class TestFusedMultiplyEquivalence:
    @pytest.mark.parametrize("policy", ["hybrid", "local", "remote"])
    @pytest.mark.parametrize("width", [1, 2, 16])
    def test_bit_identical_across_policies_and_widths(self, rng, policy, width):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.5))
        on, off = config_pair(mode_policy=policy, tile_width_factor=width)
        r_on = ts_spgemm(a, b, P, config=on)
        r_off = ts_spgemm(a, b, P, config=off)
        assert bitwise_equal(r_on.C, r_off.C)
        assert_bytes_conserved(r_on.report, r_off.report)
        assert r_on.rounds < r_off.rounds
        # fewer rounds is the whole point: modelled time must not grow
        assert r_on.multiply_time <= r_off.multiply_time

    @pytest.mark.parametrize("kernel", ["auto", "esc-vectorized", "spa", "hash"])
    def test_bit_identical_across_kernels(self, rng, kernel):
        a = csr_from_dense(random_dense(rng, N, N, 0.25))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        on, off = config_pair(kernel=kernel, tile_width_factor=2)
        assert bitwise_equal(
            ts_spgemm(a, b, P, config=on).C, ts_spgemm(a, b, P, config=off).C
        )

    @pytest.mark.parametrize("semiring", [PLUS_TIMES, MIN_PLUS, BOOL_AND_OR])
    def test_bit_identical_across_semirings(self, rng, semiring):
        dtype = np.bool_ if semiring is BOOL_AND_OR else np.float64
        a = csr_from_dense(random_dense(rng, N, N, 0.2, dtype=dtype))
        b = csr_from_dense(random_dense(rng, N, D, 0.5, dtype=dtype))
        on, off = config_pair(tile_width_factor=1)
        r_on = ts_spgemm(a, b, P, semiring=semiring, config=on)
        r_off = ts_spgemm(a, b, P, semiring=semiring, config=off)
        assert bitwise_equal(r_on.C, r_off.C)
        assert_bytes_conserved(r_on.report, r_off.report)

    def test_spmm_bit_identical(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        bd = rng.random((N, D))
        on, off = config_pair(tile_width_factor=1)
        r_on = ts_spmm(a, bd, P, config=on)
        r_off = ts_spmm(a, bd, P, config=off)
        assert np.array_equal(r_on.C, r_off.C)
        assert_bytes_conserved(r_on.report, r_off.report)
        assert r_on.rounds < r_off.rounds

    def test_single_rank_fused(self, rng):
        a = csr_from_dense(random_dense(rng, 10, 10, 0.3))
        b = csr_from_dense(random_dense(rng, 10, 3, 0.5))
        on, off = config_pair()
        assert bitwise_equal(
            ts_spgemm(a, b, 1, config=on).C, ts_spgemm(a, b, 1, config=off).C
        )


# ----------------------------------------------------------------------
# resident sessions: one fused exchange per multiply step
# ----------------------------------------------------------------------
class TestFusedSessions:
    def test_session_multiply_is_one_round(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        on, off = config_pair(tile_width_factor=1)
        with TsSession(a, P, config=on) as s_on, TsSession(
            a, P, config=off
        ) as s_off:
            for density in (0.5, 0.2):
                b = csr_from_dense(random_dense(rng, N, D, density))
                m_on, m_off = s_on.multiply(b), s_off.multiply(b)
                assert bitwise_equal(m_on.C, m_off.C)
                assert_bytes_conserved(m_on.report, m_off.report)
                # FusedMM proper: modes + all rounds' fetch-B + send-C
                # in a single exchange
                assert m_on.rounds == 1
                assert m_off.rounds == 1 + 2 * P  # symbolic + per-round pairs

    def test_handle_chain_bit_identical(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2, dtype=np.bool_))
        b0 = csr_from_dense(random_dense(rng, N, D, 0.3, dtype=np.bool_))
        outs = {}
        for cfg in config_pair(tile_width_factor=2):
            with TsSession(a, P, semiring=BOOL_AND_OR, config=cfg) as s:
                h = s.scatter(b0)
                for _ in range(3):
                    h = s.multiply(h, gather=False).C
                outs[cfg.fuse_comm] = h.gather()
        assert bitwise_equal(outs[True], outs[False])

    def test_fresh_plan_ablation_also_fuses(self, rng):
        """reuse_plan=False still rides the fused exchange (throwaway
        prepared): outputs bit-identical, rounds still collapse."""
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.5))
        on, off = config_pair(reuse_plan=False, tile_width_factor=1)
        with TsSession(a, P, config=on) as s_on, TsSession(
            a, P, config=off
        ) as s_off:
            m_on, m_off = s_on.multiply(b), s_off.multiply(b)
            assert bitwise_equal(m_on.C, m_off.C)
            assert m_on.rounds < m_off.rounds


# ----------------------------------------------------------------------
# apps: MS-BFS and the SDDMM-fused embedding epoch
# ----------------------------------------------------------------------
def _symmetric_graph(rng, n, density):
    dense = rng.random((n, n)) < density
    dense = dense | dense.T
    np.fill_diagonal(dense, False)
    return CsrMatrix.from_dense(dense.astype(np.float64))


class TestFusedApps:
    def test_msbfs_bit_identical_and_one_round_per_level(self, rng):
        a = _symmetric_graph(rng, 60, 0.08)
        sources = np.array([0, 7, 21, 33])
        on, off = config_pair(tile_width_factor=1)
        r_on = msbfs(a, sources, P, config=on)
        r_off = msbfs(a, sources, P, config=off)
        assert bitwise_equal(r_on.visited, r_off.visited)
        assert all(it.rounds == 1 for it in r_on.iterations)
        assert all(it.rounds == 1 + 2 * P for it in r_off.iterations)
        # the resident SPMD loop rides the same fused schedule: per-level
        # traces must agree byte-for-byte and round-for-round
        spmd = msbfs_spmd(a, sources, P, config=on)
        assert bitwise_equal(spmd.visited, r_on.visited)
        assert [it.comm_bytes for it in spmd.iterations] == [
            it.comm_bytes for it in r_on.iterations
        ]
        assert [it.rounds for it in spmd.iterations] == [
            it.rounds for it in r_on.iterations
        ]

    @pytest.mark.parametrize("policy", ["hybrid", "local", "remote"])
    @pytest.mark.parametrize("refresh", [1, 3])
    def test_embedding_bit_identical(self, rng, policy, refresh):
        adj = _symmetric_graph(rng, N, 0.12)
        kwargs = dict(
            d=8, sparsity=0.5, epochs=4, seed=7, negative_refresh=refresh
        )
        on, off = config_pair(
            mode_policy=policy, tile_width_factor=2, tile_height=8
        )
        r_on = train_sparse_embedding(adj, P, config=on, **kwargs)
        r_off = train_sparse_embedding(adj, P, config=off, **kwargs)
        assert bitwise_equal(r_on.Z, r_off.Z)
        assert r_on.accuracy == r_off.accuracy
        for e_on, e_off in zip(r_on.epochs, r_off.epochs):
            assert e_on.comm_bytes == e_off.comm_bytes
            assert e_on.rounds < e_off.rounds
            assert e_on.driver_scatter_bytes == e_on.driver_gather_bytes == 0

    def test_embedding_epoch_round_budget(self, rng):
        """The fused epoch is 2-3 exchanges — the SDDMM fetch rides the
        multiply's combined round, the values-only refresh stays its own
        round, and send-C is skipped collectively when no tile is remote
        — vs the unfused 3 + 2*ceil(p/w)."""
        adj = _symmetric_graph(rng, N, 0.12)
        on, off = config_pair(tile_width_factor=1, tile_height=8)
        kwargs = dict(d=8, sparsity=0.5, epochs=3, seed=7)
        r_on = train_sparse_embedding(adj, P, config=on, **kwargs)
        r_off = train_sparse_embedding(adj, P, config=off, **kwargs)
        for e_on, e_off in zip(r_on.epochs, r_off.epochs):
            assert e_on.rounds <= 3
            assert e_off.rounds == 3 + 2 * P
            assert e_off.rounds >= 2 * e_on.rounds

    def test_embedding_driver_gather_matches_fused(self, rng):
        adj = _symmetric_graph(rng, N, 0.12)
        on, _ = config_pair(tile_width_factor=2, tile_height=8)
        kwargs = dict(d=8, sparsity=0.5, epochs=3, seed=9, config=on)
        resident = train_sparse_embedding(adj, P, **kwargs)
        ablated = train_sparse_embedding(adj, P, driver_gather=True, **kwargs)
        assert bitwise_equal(resident.Z, ablated.Z)


# ----------------------------------------------------------------------
# satellite: values-only update_operand
# ----------------------------------------------------------------------
class TestValuesOnlyUpdateOperand:
    def test_values_only_refresh_bytes(self, rng):
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        with TsSession(a, P) as session:
            a2 = CsrMatrix(
                a.shape, a.indptr, a.indices, a.data * 1.5, check=False
            )
            report = session.update_operand(a2)
            phases = report.phase_bytes()
            # only the nnz values travel: no full column-copy rebuild
            assert phases.get("build-Ac", 0) == 0
            assert 0 < phases.get("refresh-values", 0) <= a.data.nbytes
            b = csr_from_dense(random_dense(rng, N, D, 0.4))
            assert bitwise_equal(
                session.multiply(b).C, ts_spgemm(a2, b, P).C
            )

    @pytest.mark.parametrize("policy", ["hybrid", "local", "remote"])
    def test_bit_identical_across_policies(self, rng, policy):
        config = TsConfig(mode_policy=policy)
        a = csr_from_dense(random_dense(rng, N, N, 0.2))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        with TsSession(a, P, config=config) as session:
            session.multiply(b)
            a2 = CsrMatrix(
                a.shape, a.indptr, a.indices, a.data + 0.25, check=False
            )
            session.update_operand(a2)
            assert bitwise_equal(
                session.multiply(b).C, ts_spgemm(a2, b, P, config=config).C
            )

    def test_pattern_change_still_full_resetup(self, rng):
        a1 = csr_from_dense(random_dense(rng, N, N, 0.2))
        a2 = csr_from_dense(random_dense(rng, N, N, 0.25))
        b = csr_from_dense(random_dense(rng, N, D, 0.4))
        with TsSession(a1, P) as session:
            report = session.update_operand(a2)
            assert report.phase_bytes().get("build-Ac", 0) > 0
            assert bitwise_equal(session.multiply(b).C, ts_spgemm(a2, b, P).C)
