"""Scale smoke tests: the thread runtime at its intended upper range."""

import numpy as np
import pytest

from repro.core import ts_spgemm
from repro.data import erdos_renyi, tall_skinny
from repro.mpi import run_spmd
from repro.sparse import spgemm


class TestLargeRankCounts:
    def test_collectives_at_128_ranks(self):
        def program(comm):
            total = comm.allreduce(comm.rank)
            sub = comm.split(color=comm.rank % 4)
            return (total, sub.allreduce(1))

        result = run_spmd(128, program)
        expected = 128 * 127 // 2
        assert all(v == (expected, 32) for v in result.values)

    def test_alltoall_at_96_ranks(self):
        def program(comm):
            recv = comm.alltoall([comm.rank] * comm.size)
            return sum(recv)

        result = run_spmd(96, program)
        assert result.values == [96 * 95 // 2] * 96

    def test_multiply_at_64_ranks(self):
        A = erdos_renyi(2048, 8, seed=31)
        B = tall_skinny(2048, 16, 0.8, seed=32)
        expected, _ = spgemm(A, B)
        result = ts_spgemm(A, B, 64)
        assert result.C.equal(expected)
        # every rank contributed statistics
        assert len(result.report.rank_stats) == 64

    def test_report_consistency_at_scale(self):
        A = erdos_renyi(1024, 6, seed=33)
        B = tall_skinny(1024, 8, 0.8, seed=34)
        result = ts_spgemm(A, B, 32)
        report = result.report
        # makespan must bound every per-rank decomposition
        for comm_t, comp_t in zip(report.comm_times, report.compute_times):
            assert comm_t + comp_t <= report.runtime + 1e-9
        assert report.total_bytes() > 0
