"""Integration: every distributed algorithm against every workload shape.

These tests exercise the full stack — generators → distribution → the
distributed multiply → gather — across algorithms, semirings, process
counts and the awkward shapes (square B, d=1, hub rows, empty blocks)
that unit tests cover only piecewise.  Property-based variants drive the
same pipeline from hypothesis-generated matrices.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ALGORITHMS
from repro.core import TsConfig, ts_spgemm
from repro.data import erdos_renyi, rmat, tall_skinny
from repro.sparse import BOOL_AND_OR, MIN_PLUS, PLUS_TIMES, CsrMatrix, spgemm
from ..conftest import csr_from_dense, random_dense

ALGOS = sorted(ALGORITHMS)


class TestWorkloadShapes:
    @pytest.mark.parametrize("name", ALGOS)
    def test_rmat_with_hubs(self, name):
        A = rmat(96, 8, seed=1)
        B = tall_skinny(96, 12, 0.7, seed=2)
        expected, _ = spgemm(A, B)
        assert ALGORITHMS[name](A, B, 4).C.equal(expected), name

    @pytest.mark.parametrize("name", ALGOS)
    def test_square_b(self, name):
        """Conclusion §VI: TS-SpGEMM handles B that resembles A in shape."""
        A = erdos_renyi(48, 5, seed=3)
        B = erdos_renyi(48, 5, seed=4)
        expected, _ = spgemm(A, B)
        assert ALGORITHMS[name](A, B, 4).C.equal(expected), name

    @pytest.mark.parametrize("name", ALGOS)
    def test_d_equals_one(self, name):
        """d=1 is SpMSpV — the single-source BFS building block (§IV-A)."""
        A = erdos_renyi(40, 4, seed=5)
        B = tall_skinny(40, 1, 0.8, seed=6)
        expected, _ = spgemm(A, B)
        assert ALGORITHMS[name](A, B, 4).C.equal(expected), name

    @pytest.mark.parametrize("name", ALGOS)
    def test_bool_semiring_everywhere(self, name):
        A = erdos_renyi(40, 4, seed=7, dtype=np.bool_)
        B = tall_skinny(40, 6, 0.6, seed=8, dtype=np.bool_)
        expected, _ = spgemm(A, B, BOOL_AND_OR)
        result = ALGORITHMS[name](A, B, 4, semiring=BOOL_AND_OR)
        assert result.C.equal(expected), name

    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_awkward_rank_counts(self, p):
        """Non-power-of-two p: uneven blocks, degenerate grids."""
        A = erdos_renyi(37, 4, seed=9)
        B = tall_skinny(37, 5, 0.5, seed=10)
        expected, _ = spgemm(A, B)
        for name in ALGOS:
            assert ALGORITHMS[name](A, B, p).C.equal(expected), (name, p)

    def test_empty_rank_blocks(self):
        """p > n: some ranks own zero rows yet participate in collectives."""
        A = erdos_renyi(6, 2, seed=11)
        B = tall_skinny(6, 3, 0.3, seed=12)
        expected, _ = spgemm(A, B)
        for name in ALGOS:
            assert ALGORITHMS[name](A, B, 8).C.equal(expected), name


class TestConfigurationMatrix:
    @pytest.mark.parametrize("width", [1, 3, 16])
    @pytest.mark.parametrize("height", [1, 7, None])
    def test_tiling_grid(self, width, height):
        A = rmat(64, 6, seed=13)
        B = tall_skinny(64, 8, 0.6, seed=14)
        expected, _ = spgemm(A, B)
        cfg = TsConfig(tile_width_factor=width, tile_height=height)
        assert ts_spgemm(A, B, 4, config=cfg).C.equal(expected)

    def test_min_plus_chain(self):
        """Two chained tropical multiplies = 2-hop shortest paths."""
        A = csr_from_dense(
            np.where(erdos_renyi(30, 4, seed=15).to_dense() > 0, 1.0, 0.0)
        )
        B = tall_skinny(30, 4, 0.5, seed=16)
        hop1 = ts_spgemm(A, B, 3, semiring=MIN_PLUS).C
        hop2 = ts_spgemm(A, hop1, 3, semiring=MIN_PLUS).C
        expected1, _ = spgemm(A, B, MIN_PLUS)
        expected2, _ = spgemm(A, expected1, MIN_PLUS)
        assert hop2.equal(expected2)


class TestPropertyBased:
    @given(
        n=st.integers(6, 24),
        d=st.integers(1, 6),
        p=st.integers(1, 5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_tiled_matches_serial_random(self, n, d, p, seed):
        rng = np.random.default_rng(seed)
        A = csr_from_dense(random_dense(rng, n, n, 0.25))
        B = csr_from_dense(random_dense(rng, n, d, 0.4))
        expected, _ = spgemm(A, B)
        assert ts_spgemm(A, B, p).C.equal(expected)

    @given(
        n=st.integers(6, 20),
        p=st.integers(2, 4),
        seed=st.integers(0, 1000),
        policy=st.sampled_from(["hybrid", "local", "remote"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_mode_policy_never_changes_product(self, n, p, seed, policy):
        rng = np.random.default_rng(seed)
        A = csr_from_dense(random_dense(rng, n, n, 0.3))
        B = csr_from_dense(random_dense(rng, n, 4, 0.5))
        expected, _ = spgemm(A, B)
        cfg = TsConfig(mode_policy=policy)
        assert ts_spgemm(A, B, p, config=cfg).C.equal(expected)

    @given(
        n=st.integers(8, 20),
        p=st.integers(2, 4),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=15, deadline=None)
    def test_hybrid_bytes_bounded_by_forced_policies(self, n, p, seed):
        """The byte-exact mode decision makes hybrid ≤ min(local, remote)
        up to per-payload framing: each shipped payload carries one extra
        row-pointer word (8 B), and a forced policy can pack what hybrid
        splits into two payloads into one.  Slack: 16 B per subtile pair.
        """
        rng = np.random.default_rng(seed)
        A = csr_from_dense(random_dense(rng, n, n, 0.3))
        B = csr_from_dense(random_dense(rng, n, 4, 0.5))
        byte_counts = {
            policy: ts_spgemm(
                A, B, p, config=TsConfig(mode_policy=policy)
            ).comm_bytes()
            for policy in ("hybrid", "local", "remote")
        }
        framing_slack = 16 * p * p
        assert byte_counts["hybrid"] <= byte_counts["local"] + framing_slack
        assert byte_counts["hybrid"] <= byte_counts["remote"] + framing_slack
