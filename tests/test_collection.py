"""Collection guard: the whole suite must collect with zero errors.

The seed shipped without ``__init__.py`` in ``tests/``, so every module
doing ``from ..conftest import ...`` failed collection with "attempted
relative import with no known parent package" — 15 collection errors
hiding 711 passing tests.  This test runs ``pytest --collect-only`` in a
subprocess so that regression (e.g. a new test subpackage added without
an ``__init__.py``) can never silently return.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_suite_collects_with_zero_errors():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "--collect-only", "-q", "tests"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    output = proc.stdout + proc.stderr
    # pytest exits 2 on any collection error; the summary line would also
    # read "N tests collected, M errors" instead of plain "N tests collected".
    assert proc.returncode == 0, f"collection failed:\n{output}"
    match = re.search(r"(\d+) tests? collected", output)
    assert match, f"no collection summary found:\n{output}"
    summary = output[match.start() :].splitlines()[0]
    assert "error" not in summary.lower(), f"collection errors:\n{output}"
    assert int(match.group(1)) >= 711, output


def test_every_test_dir_is_a_package():
    """Each directory holding test modules needs an ``__init__.py``."""
    for test_file in (REPO_ROOT / "tests").rglob("test_*.py"):
        marker = test_file.parent / "__init__.py"
        assert marker.exists(), f"missing {marker.relative_to(REPO_ROOT)}"
