"""Tier-1 tests of the ``spmdlint`` static checker (rules S1–S6).

Each rule has a pair of fixtures under ``tests/analysis/fixtures/``:
``sN_buggy.py`` carries ``# EXPECT: <rule>`` markers on every line the
linter must flag (rule id *and* line number are asserted, nothing
else may fire), and ``sN_clean.py`` is the minimal fix, asserted
silent under the full rule set.
"""

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import RULES_BY_ID, collect_findings, lint_source, main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"

RULE_IDS = sorted(RULES_BY_ID)


def _expected_markers(source):
    """(rule, lineno) pairs declared via ``# EXPECT: S1[, S2]`` comments."""
    out = []
    for lineno, line in enumerate(source.splitlines(), 1):
        match = re.search(r"#\s*EXPECT:\s*([A-Z0-9, ]+)$", line)
        if match:
            for rule in match.group(1).split(","):
                out.append((rule.strip(), lineno))
    return sorted(out)


def _lint_fixture(name):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return source, lint_source(name, source)


# ----------------------------------------------------------------------
# fixture pairs: exact rule ids + line numbers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule", RULE_IDS)
def test_buggy_fixture_fires_exact_rule_and_lines(rule):
    source, findings = _lint_fixture(f"{rule.lower()}_buggy.py")
    expected = _expected_markers(source)
    assert expected, "fixture must declare EXPECT markers"
    assert sorted((f.rule, f.line) for f in findings) == expected
    # No *other* rule may fire on the fixture.
    assert {f.rule for f in findings} == {rule}


@pytest.mark.parametrize("rule", RULE_IDS)
def test_clean_twin_is_silent(rule):
    _, findings = _lint_fixture(f"{rule.lower()}_clean.py")
    assert findings == []


def test_findings_carry_location_and_function():
    _, findings = _lint_fixture("s1_buggy.py")
    branch = [f for f in findings if f.qualname == "program_branch"]
    loop = [f for f in findings if f.qualname == "program_loop"]
    assert len(branch) == 1 and len(loop) == 1
    assert "deadlock" in branch[0].message
    assert branch[0].render().startswith(
        f"s1_buggy.py:{branch[0].line}:{branch[0].col}: S1 [program_branch]"
    )


# ----------------------------------------------------------------------
# discovery + suppression mechanics
# ----------------------------------------------------------------------
def test_decorated_function_is_a_rank_program():
    source = textwrap.dedent(
        """
        from repro.mpi import rank_program


        @rank_program
        def worker(c):
            c.charge_touch(16)
        """
    )
    findings = lint_source("deco.py", source)
    assert [(f.rule, f.qualname) for f in findings] == [("S4", "worker")]


def test_methods_are_not_rank_programs():
    source = textwrap.dedent(
        """
        class Driver:
            def step(self, comm):
                comm.charge_touch(16)
        """
    )
    assert lint_source("method.py", source) == []


def test_inline_suppression_on_flagged_line():
    source = textwrap.dedent(
        """
        def program(comm):
            comm.charge_touch(16)  # spmdlint: disable=S4
            with comm.phase("sync"):
                return comm.allreduce(1)
        """
    )
    assert lint_source("supp.py", source) == []


def test_suppression_on_def_line_covers_the_function():
    source = textwrap.dedent(
        """
        def program(comm):  # spmdlint: disable=all
            comm.charge_touch(16)
            rank = comm.rank
            if rank == 0:
                comm.barrier()
        """
    )
    assert lint_source("supp_def.py", source) == []


def test_suppression_is_rule_specific():
    source = textwrap.dedent(
        """
        def program(comm):
            comm.charge_touch(16)  # spmdlint: disable=S1
            with comm.phase("sync"):
                return comm.allreduce(1)
        """
    )
    assert [f.rule for f in lint_source("supp_other.py", source)] == ["S4"]


# ----------------------------------------------------------------------
# CLI: select / exit codes / baseline
# ----------------------------------------------------------------------
def test_repo_src_is_lint_clean():
    assert REPO_SRC.is_dir()
    findings = collect_findings([str(REPO_SRC)])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "prog.py"
    bad.write_text(
        "def program(comm):\n    comm.charge_touch(4)\n", encoding="utf-8"
    )
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "S4" in out and "prog.py:2" in out
    # Selecting a rule that does not fire: clean exit.
    assert main([str(bad), "--select", "S1"]) == 0
    capsys.readouterr()


def test_cli_select_rejects_unknown_rule(tmp_path, capsys):
    target = tmp_path / "empty.py"
    target.write_text("x = 1\n", encoding="utf-8")
    with pytest.raises(SystemExit) as exc:
        main([str(target), "--select", "S99"])
    assert exc.value.code == 2
    capsys.readouterr()


def test_cli_baseline_grandfathers_then_catches_growth(tmp_path, capsys):
    target = tmp_path / "prog.py"
    target.write_text(
        "def program(comm):\n    comm.charge_touch(4)\n", encoding="utf-8"
    )
    baseline = tmp_path / "baseline.json"
    assert main([str(target), "--baseline", str(baseline), "--write-baseline"]) == 0
    recorded = json.loads(baseline.read_text(encoding="utf-8"))
    assert list(recorded.values()) == [1]
    # Same findings: grandfathered, exit 0.
    assert main([str(target), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "grandfathered" in out
    # A *new* unphased booking in the same function grows past the budget.
    target.write_text(
        "def program(comm):\n"
        "    comm.charge_touch(4)\n"
        "    comm.charge_seconds(1.0)\n",
        encoding="utf-8",
    )
    assert main([str(target), "--baseline", str(baseline)]) == 1
    capsys.readouterr()


def test_cli_json_format(tmp_path, capsys):
    target = tmp_path / "prog.py"
    target.write_text(
        "def program(comm):\n    comm.charge_touch(4)\n", encoding="utf-8"
    )
    assert main([str(target), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "S4"
    assert payload[0]["line"] == 2
    assert payload[0]["function"] == "program"
