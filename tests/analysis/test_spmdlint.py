"""Tier-1 tests of the ``spmdlint`` static checker (rules S1–S14).

Each rule has a pair of fixtures under ``tests/analysis/fixtures/``:
``sN_buggy.py`` carries ``# EXPECT: <rule>`` markers on every line the
linter must flag (rule id *and* line number are asserted, nothing
else may fire), and ``sN_clean.py`` is the minimal fix, asserted
silent under the full rule set.
"""

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import RULES_BY_ID, collect_findings, lint_source, main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"

RULE_IDS = sorted(RULES_BY_ID)


def _expected_markers(source):
    """(rule, lineno) pairs declared via ``# EXPECT: S1[, S2]`` comments."""
    out = []
    for lineno, line in enumerate(source.splitlines(), 1):
        match = re.search(r"#\s*EXPECT:\s*([A-Z0-9, ]+)$", line)
        if match:
            for rule in match.group(1).split(","):
                out.append((rule.strip(), lineno))
    return sorted(out)


def _lint_fixture(name):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return source, lint_source(name, source)


# ----------------------------------------------------------------------
# fixture pairs: exact rule ids + line numbers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule", RULE_IDS)
def test_buggy_fixture_fires_exact_rule_and_lines(rule):
    source, findings = _lint_fixture(f"{rule.lower()}_buggy.py")
    expected = _expected_markers(source)
    assert expected, "fixture must declare EXPECT markers"
    assert sorted((f.rule, f.line) for f in findings) == expected
    # No *other* rule may fire on the fixture.
    assert {f.rule for f in findings} == {rule}


@pytest.mark.parametrize("rule", RULE_IDS)
def test_clean_twin_is_silent(rule):
    _, findings = _lint_fixture(f"{rule.lower()}_clean.py")
    assert findings == []


def test_findings_carry_location_and_function():
    _, findings = _lint_fixture("s1_buggy.py")
    branch = [f for f in findings if f.qualname == "program_branch"]
    loop = [f for f in findings if f.qualname == "program_loop"]
    assert len(branch) == 1 and len(loop) == 1
    assert "deadlock" in branch[0].message
    assert branch[0].render().startswith(
        f"s1_buggy.py:{branch[0].line}:{branch[0].col}: S1 [program_branch]"
    )


# ----------------------------------------------------------------------
# discovery + suppression mechanics
# ----------------------------------------------------------------------
def test_decorated_function_is_a_rank_program():
    source = textwrap.dedent(
        """
        from repro.mpi import rank_program


        @rank_program
        def worker(c):
            c.charge_touch(16)
        """
    )
    findings = lint_source("deco.py", source)
    assert [(f.rule, f.qualname) for f in findings] == [("S4", "worker")]


def test_methods_are_not_rank_programs():
    source = textwrap.dedent(
        """
        class Driver:
            def step(self, comm):
                comm.charge_touch(16)
        """
    )
    assert lint_source("method.py", source) == []


def test_inline_suppression_on_flagged_line():
    source = textwrap.dedent(
        """
        def program(comm):
            comm.charge_touch(16)  # spmdlint: disable=S4 -- test: caller phases this
            with comm.phase("sync"):
                return comm.allreduce(1)
        """
    )
    assert lint_source("supp.py", source) == []


def test_suppression_on_def_line_covers_the_function():
    source = textwrap.dedent(
        """
        def program(comm):  # spmdlint: disable=all -- test: demo function
            comm.charge_touch(16)
            rank = comm.rank
            if rank == 0:
                comm.barrier()
        """
    )
    assert lint_source("supp_def.py", source) == []


def test_suppression_is_rule_specific():
    source = textwrap.dedent(
        """
        def program(comm):
            comm.charge_touch(16)  # spmdlint: disable=S1 -- test: wrong rule on purpose
            with comm.phase("sync"):
                return comm.allreduce(1)
        """
    )
    assert [f.rule for f in lint_source("supp_other.py", source)] == ["S4"]


# ----------------------------------------------------------------------
# CLI: select / exit codes / baseline
# ----------------------------------------------------------------------
def test_repo_src_is_lint_clean():
    assert REPO_SRC.is_dir()
    findings = collect_findings([str(REPO_SRC)])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "prog.py"
    bad.write_text(
        "def program(comm):\n    comm.charge_touch(4)\n", encoding="utf-8"
    )
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "S4" in out and "prog.py:2" in out
    # Selecting a rule that does not fire: clean exit.
    assert main([str(bad), "--select", "S1"]) == 0
    capsys.readouterr()


def test_cli_select_rejects_unknown_rule(tmp_path, capsys):
    target = tmp_path / "empty.py"
    target.write_text("x = 1\n", encoding="utf-8")
    with pytest.raises(SystemExit) as exc:
        main([str(target), "--select", "S99"])
    assert exc.value.code == 2
    capsys.readouterr()


def test_cli_baseline_grandfathers_then_catches_growth(tmp_path, capsys):
    target = tmp_path / "prog.py"
    target.write_text(
        "def program(comm):\n    comm.charge_touch(4)\n", encoding="utf-8"
    )
    baseline = tmp_path / "baseline.json"
    assert main([str(target), "--baseline", str(baseline), "--write-baseline"]) == 0
    recorded = json.loads(baseline.read_text(encoding="utf-8"))
    assert list(recorded.values()) == [1]
    # Same findings: grandfathered, exit 0.
    assert main([str(target), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "grandfathered" in out
    # A *new* unphased booking in the same function grows past the budget.
    target.write_text(
        "def program(comm):\n"
        "    comm.charge_touch(4)\n"
        "    comm.charge_seconds(1.0)\n",
        encoding="utf-8",
    )
    assert main([str(target), "--baseline", str(baseline)]) == 1
    capsys.readouterr()


def test_cli_json_format(tmp_path, capsys):
    target = tmp_path / "prog.py"
    target.write_text(
        "def program(comm):\n    comm.charge_touch(4)\n", encoding="utf-8"
    )
    assert main([str(target), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "S4"
    assert payload[0]["line"] == 2
    assert payload[0]["function"] == "program"
    # the stable fingerprint (what --baseline matches on) rides along,
    # so external consumers survive unrelated line drift
    assert payload[0]["fingerprint"].endswith("prog.py::program::S4")
    assert payload[0]["fingerprint"].count("::") == 2


def test_cli_exit_code_contract(tmp_path, capsys):
    """0 — clean; 1 — findings; 2 — usage error (docs/spmdlint.md)."""
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "def program(comm):\n    comm.charge_touch(4)\n", encoding="utf-8"
    )
    assert main([str(clean)]) == 0
    assert main([str(dirty)]) == 1
    with pytest.raises(SystemExit) as exc:
        main([str(clean), "--select", "NOPE"])
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        main([str(clean), "--write-baseline"])  # requires --baseline FILE
    assert exc.value.code == 2
    capsys.readouterr()


def test_render_emits_clickable_path_line_col():
    _, findings = _lint_fixture("s8_buggy.py")
    for f in findings:
        assert re.match(
            rf"^s8_buggy\.py:{f.line}:{f.col}: S8 ", f.render()
        )


# ----------------------------------------------------------------------
# model checker (S8/S9) specifics
# ----------------------------------------------------------------------
def test_s8_counterexample_names_paths_and_both_sites():
    """The divergence message must carry a usable counterexample: the
    world size, both mismatched call sites, and each rank's path
    conditions."""
    _, findings = _lint_fixture("s8_buggy.py")
    by_func = {f.qualname: f for f in findings}

    order = by_func["program_order"].message
    assert "p=2" in order
    assert "rank 0" in order and "rank 1" in order
    # both sides of the first mismatched collective, with call sites
    assert "'barrier'" in order and "'allreduce'" in order
    assert "s8_buggy.py:31" in order and "s8_buggy.py:34" in order
    # per-rank path conditions name the folded rank-constant branch
    assert "`comm.rank == 0` -> True" in order
    assert "`comm.rank == 0` -> False" in order

    trip = by_func["program_helper_trip"].message
    assert "p=2" in trip
    # the counterexample explains the trip-count divergence
    assert "1 iteration(s)" in trip and "2 iteration(s)" in trip
    assert "ends after 1 collective(s)" in trip


def test_s9_counterexample_names_sender_and_peer_path():
    _, findings = _lint_fixture("s9_buggy.py")
    assert len(findings) == 1
    msg = findings[0].message
    assert "rank 0" in msg and "tag 7" in msg
    assert "no matching recv" in msg
    assert "rank 1" in msg  # the destination whose path has no recv


def test_model_checker_abstains_on_unknown_trip_loop():
    """An unknown-trip-count loop around communication yields an
    explicit abstention — no S8 guess in either direction."""
    from repro.analysis.lint import index_module, model_results

    source = textwrap.dedent(
        """
        from repro.mpi import rank_program


        @rank_program
        def program(comm, work):
            with comm.phase("drain"):
                while work.pending():
                    comm.allreduce(1)
        """
    )
    module = index_module("abstain.py", source)
    results = model_results(module)
    assert results, "root must be discovered"
    for model in results.values():
        assert not model.checked
        assert model.abstention is not None
        assert "unknown-trip-count" in model.abstention.reason
    # and the lint run stays silent rather than guessing
    assert [f.rule for f in lint_source("abstain.py", source)] == []


def test_unknown_branches_are_explored_rank_invariantly():
    """A condition the model cannot fold is assumed rank-invariant:
    both arms are explored, but every rank takes the same side in one
    world — so a branch-dependent (not rank-dependent) collective
    choice is consistent, not a divergence."""
    source = textwrap.dedent(
        """
        from repro.mpi import rank_program


        @rank_program
        def program(comm, fast):
            with comm.phase("step"):
                if fast:
                    comm.allreduce(1)
                else:
                    comm.barrier()
        """
    )
    assert [f.rule for f in lint_source("worlds.py", source)] == []


# ----------------------------------------------------------------------
# suppression rationale (S13) mechanics
# ----------------------------------------------------------------------
def test_bare_suppression_is_a_finding():
    source = textwrap.dedent(
        """
        def program(comm):
            comm.charge_touch(16)  # spmdlint: disable=S4
        """
    )
    findings = lint_source("bare.py", source)
    assert [f.rule for f in findings] == ["S13"]
    assert "rationale" in findings[0].message


def test_s13_bypasses_suppression():
    # not even `disable=all` silences the demand for a rationale
    source = textwrap.dedent(
        """
        def program(comm):  # spmdlint: disable=all
            comm.charge_touch(16)
        """
    )
    assert [f.rule for f in lint_source("all.py", source)] == ["S13"]


def test_rationale_satisfies_s13():
    source = textwrap.dedent(
        """
        def program(comm):
            comm.charge_touch(16)  # spmdlint: disable=S4 -- caller phases this
        """
    )
    assert lint_source("ok.py", source) == []


def test_standalone_directive_covers_the_next_line():
    source = textwrap.dedent(
        """
        def program(comm):
            # spmdlint: disable=S4 -- caller phases this
            comm.charge_touch(16)
        """
    )
    assert lint_source("above.py", source) == []


# ----------------------------------------------------------------------
# timing guard: the full lint must stay a cheap pre-test gate
# ----------------------------------------------------------------------
def test_full_lint_over_src_stays_fast():
    import time

    start = time.monotonic()
    collect_findings([str(REPO_SRC)])
    elapsed = time.monotonic() - start
    assert elapsed < 30.0, (
        f"full S1-S13 lint over src/ took {elapsed:.1f}s — the model "
        "checker's fuel limits are supposed to keep this a cheap gate"
    )
