"""Cross-validation: the S8/S9 model checker vs the runtime sanitizer.

The static model checker *predicts* collective behavior; the runtime
sanitizer (``REPRO_SANITIZE=1`` / ``run_spmd(..., sanitize=True)``)
*observes* it.  This harness executes every S8/S9 fixture and asserts
the two layers agree on every pair:

* each ``@rank_program`` in a *buggy* fixture carries a
  ``# RUNTIME: <ErrorClass>`` marker naming the sanitizer error it must
  raise when actually executed (a watchdog ``DeadlockError`` is always
  an acceptable alternative — a hang caught by the timeout *is* the
  failure mode the static rule predicts);
* every root in a *clean* fixture runs green under the sanitizer;
* the static verdict (fixture has S8/S9 findings) matches the runtime
  verdict (some root raises) on every fixture file.
"""

import importlib.util
import re
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import lint_source
from repro.mpi import errors as mpi_errors
from repro.mpi.executor import run_spmd
from repro.mpi.marker import is_rank_program

FIXTURES = Path(__file__).parent / "fixtures"
MODEL_RULES = ("s8", "s9")

#: Small world and a short watchdog: a predicted deadlock must surface
#: as a structured error quickly, not hang the test suite.
P = 2
TIMEOUT = 10.0

_RUNTIME_RE = re.compile(r"def\s+(\w+)\s*\(comm\):\s*#\s*RUNTIME:\s*(\w+)")


def _load_module(path: Path):
    name = f"fixture_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def _runtime_markers(path: Path):
    """``{root name: expected sanitizer error class}`` from # RUNTIME."""
    out = {}
    for match in _RUNTIME_RE.finditer(path.read_text(encoding="utf-8")):
        out[match.group(1)] = getattr(mpi_errors, match.group(2))
    return out


def _roots(module):
    return {
        name: fn
        for name, fn in vars(module).items()
        if callable(fn) and is_rank_program(fn)
    }


# ----------------------------------------------------------------------
# buggy fixtures: every root raises exactly what its marker predicts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule", MODEL_RULES)
def test_buggy_fixture_fails_under_runtime_sanitizer(rule):
    path = FIXTURES / f"{rule}_buggy.py"
    markers = _runtime_markers(path)
    assert markers, "every S8/S9 buggy root must declare a # RUNTIME marker"
    module = _load_module(path)
    roots = _roots(module)
    assert set(markers) == set(roots)
    for name, expected in markers.items():
        with pytest.raises((expected, mpi_errors.DeadlockError)):
            run_spmd(P, roots[name], sanitize=True, timeout=TIMEOUT)


@pytest.mark.parametrize("rule", MODEL_RULES)
def test_clean_fixture_runs_green_under_runtime_sanitizer(rule):
    module = _load_module(FIXTURES / f"{rule}_clean.py")
    roots = _roots(module)
    assert roots, "clean twin must exercise the same entry points"
    for fn in roots.values():
        run_spmd(P, fn, sanitize=True, timeout=TIMEOUT)


# ----------------------------------------------------------------------
# agreement: the static verdict equals the runtime verdict per fixture
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule", MODEL_RULES)
@pytest.mark.parametrize("variant", ("buggy", "clean"))
def test_static_and_runtime_verdicts_agree(rule, variant):
    path = FIXTURES / f"{rule}_{variant}.py"
    source = path.read_text(encoding="utf-8")
    static_findings = {
        f.rule for f in lint_source(path.name, source)
    } & {rule.upper()}
    static_bad = bool(static_findings)

    module = _load_module(path)
    runtime_bad = False
    for fn in _roots(module).values():
        try:
            run_spmd(P, fn, sanitize=True, timeout=TIMEOUT)
        except mpi_errors.SpmdDiagnosticError:
            runtime_bad = True
    assert static_bad == runtime_bad == (variant == "buggy")
