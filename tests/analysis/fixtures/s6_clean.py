"""S6 clean twins: a statically known section set, or a dynamic one
published through ``meta``."""


def program_static(comm):
    sections = [
        ("fetch-B", [None] * comm.size),
        ("send-C", [None] * comm.size),
    ]
    with comm.phase("fused"):
        return comm.alltoall_fused(sections)


def program_meta(comm):
    sections = [("tile-%d" % t, [None] * comm.size) for t in range(3)]
    with comm.phase("fused"):
        return comm.alltoall_fused(sections, meta={"tiles": 3})
