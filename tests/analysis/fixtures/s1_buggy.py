"""S1 fixture: collectives under rank-dependent control flow.

Lines carrying ``# EXPECT: <rule>`` are asserted (rule id + line
number) by ``tests/analysis/test_spmdlint.py``; the ``*_clean.py`` twin
is the minimal fix and must lint silent.
"""


def program_branch(comm):
    rank = comm.rank
    if rank == 0:
        with comm.phase("sync"):
            total = comm.allreduce(1)  # EXPECT: S1
    else:
        total = None
    return total


def program_loop(comm):
    steps = comm.rank + 1
    while steps > 0:
        comm.barrier()  # EXPECT: S1
        steps -= 1
