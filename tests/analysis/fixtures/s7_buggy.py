"""S7 fixture: rank program mutating resident operand state directly.

The operand handle's ``.aux`` dict and ``.prepared`` plan are
checkpointed by the resilience layer; writing them directly (instead of
through ``operand.cache(...)``) means a post-fault recovery restores
stale state.
"""


def sddmm_prologue(comm, operand, z_local):
    with comm.phase("prepare"):
        rows = comm.alltoall([z_local] * comm.size)
    operand.aux["plan"] = rows  # EXPECT: S7
    operand.aux.update(planned=True)  # EXPECT: S7
    operand.prepared.spmm_cache = None  # EXPECT: S7
    return rows
