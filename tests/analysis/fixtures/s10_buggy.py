"""S10 fixture: session/handle lifecycle misuse in driver code.

These are *driver* functions (no ``comm`` parameter) — the lifecycle
dataflow pass tracks ``TsSession`` values and the distributed handles
they produce through assignments, closes and method calls.
"""


def use_after_close(A, B, p):
    session = TsSession(A, p)
    handle = session.scatter(B)
    result = handle.gather()
    session.close()
    session.update_operand(A)  # EXPECT: S10
    return result


def gather_after_close(A, B, p):
    session = TsSession(A, p)
    handle = session.scatter(B)
    session.close()
    return handle.gather()  # EXPECT: S10


def cross_session(A, B, p):
    left = TsSession(A, p)
    right = TsSession(B, p)
    handle = left.scatter(B)
    out = right.multiply(handle)  # EXPECT: S10
    left.close()
    right.close()
    return out
