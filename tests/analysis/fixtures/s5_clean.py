"""S5 clean twin: the virtual clock and explicitly seeded per-rank
streams."""

import numpy as np


def program(comm):
    t0 = comm.time
    rng = np.random.default_rng(42 + comm.rank)
    sample = rng.standard_normal()
    with comm.phase("sync"):
        return comm.allreduce(t0 + sample)
