"""S2 fixture: send whose tag class no recv in the module can match."""


def program(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    with comm.phase("ring"):
        comm.send(b"payload", dest=right, tag=7)  # EXPECT: S2
        return comm.recv(source=left, tag=3)
