"""S14 clean twin: every peer set and guard is derived from
``comm.size``, so the program stays correct at any world width —
including the p-1 world an elastic shrink leaves behind."""


def program(comm):
    mode = "ring" if comm.size > 1 else "solo"
    total = 0
    for peer in range(comm.size):
        if peer != comm.rank:
            with comm.phase("exchange"):
                comm.send(mode, peer, tag=7)
    for _ in range(comm.size - 1):
        with comm.phase("exchange"):
            total += len(comm.recv(tag=7))
    return total
