"""S12 clean twin: every path out of the function returns the slot."""


def finally_checkin(pool, query):
    slot = pool.checkout()
    try:
        return slot.session.multiply(query)
    finally:
        pool.checkin(slot)


def with_checkout(pool, query):
    with pool.checkout() as slot:
        return slot.session.multiply(query)


def respawn_keeps_the_checkout(pool, query):
    slot = pool.checkout()
    try:
        result = slot.session.multiply(query)
    except RuntimeError:
        pool.respawn(slot)  # replaces the session; checkout persists
        result = slot.session.multiply(query)
    pool.checkin(slot)
    return result
