"""S9 clean twin: the destination rank's path reaches a matching recv."""

from repro.mpi import rank_program


@rank_program
def program(comm):
    with comm.phase("pipeline"):
        if comm.rank == 0:
            comm.send(b"work", dest=1, tag=7)
        elif comm.rank == 1:
            return comm.recv(source=0, tag=7)
    return None
