"""S4 clean twin: every booking happens under a phase — the helper's
direct charge is covered because its only call site is phased."""


def _merge(comm, payload):
    comm.charge_touch(len(payload))


def program(comm):
    with comm.phase("merge"):
        comm.charge_touch(1024)
        _merge(comm, b"xx")
    with comm.phase("sync"):
        return comm.allreduce(comm.rank)
