"""S3 fixture: rank program mutating closure-captured / global state."""

RESULTS = {}


def make_program(shared):
    def program(comm):
        with comm.phase("work"):
            local = comm.allreduce(comm.rank)
        shared.append(local)  # EXPECT: S3
        RESULTS["last"] = local  # EXPECT: S3
        return local

    return program
