"""S1 clean twin: every path calls the same collectives, loop trip
counts are rank-invariant."""


def program_branch(comm):
    rank = comm.rank
    if rank == 0:
        with comm.phase("sync"):
            total = comm.allreduce(1)
    else:
        with comm.phase("sync"):
            total = comm.allreduce(0)
    return total


def program_loop(comm):
    for _ in range(comm.size):
        comm.barrier()
