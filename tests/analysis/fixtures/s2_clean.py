"""S2 clean twin: the recv's tag class matches the send's."""


def program(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    with comm.phase("ring"):
        comm.send(b"payload", dest=right, tag=7)
        return comm.recv(source=left, tag=7)


def program_wildcard(comm):
    right = (comm.rank + 1) % comm.size
    with comm.phase("ring"):
        comm.send(b"payload", dest=right, tag=42)
        return comm.recv(source=comm.ANY_SOURCE, tag=comm.ANY_TAG)
