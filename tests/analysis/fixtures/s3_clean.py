"""S3 clean twin: per-rank slot writes (indexed by ``comm.rank``) and
purely local mutation are fine."""


def make_program(shared):
    def program(comm):
        with comm.phase("work"):
            local = comm.allreduce(comm.rank)
        acc = []
        acc.append(local)
        shared[comm.rank] = acc
        return local

    return program
