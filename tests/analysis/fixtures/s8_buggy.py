"""S8 fixture: cross-rank collective trace divergence (model checker).

Both cases are invisible to the syntactic S1: the order swap keeps the
same *multiset* of collective kinds on each arm, and the helper case
hides the rank-dependent trip count behind a function call.  The
functions are ``@rank_program``-decorated so the model checker treats
them as roots and the runtime cross-validation harness
(``test_model_checker_runtime.py``) can execute them; ``# RUNTIME:``
markers name the sanitizer error each one must raise.
"""

from repro.mpi import rank_program


def _reduce_steps(comm, steps):
    with comm.phase("work"):
        for _ in range(steps):
            comm.allreduce(1)  # EXPECT: S8


@rank_program
def program_helper_trip(comm):  # RUNTIME: CollectiveStallError
    # trip count differs per rank: rank r runs r+1 allreduces
    _reduce_steps(comm, comm.rank + 1)


@rank_program
def program_order(comm):  # RUNTIME: CollectiveMismatchError
    with comm.phase("sync"):
        if comm.rank == 0:
            comm.barrier()  # EXPECT: S8
            total = comm.allreduce(1)
        else:
            total = comm.allreduce(1)
            comm.barrier()
    return total
