"""S13 fixture: suppression directives without a written rationale.

The suppressions *work* (S4/S2 stay silent) but each directive is
itself flagged — and S13 bypasses suppression, so not even
``disable=all`` can silence the demand for a rationale.
"""


def program(comm):  # spmdlint: disable=S4 # EXPECT: S13
    comm.charge_touch(16)


def ring(comm):
    with comm.phase("ring"):
        comm.send(b"x", dest=0, tag=1)  # spmdlint: disable=S2 # EXPECT: S13
