"""S14 fixture: world size baked into a rank program as literals.

Both shapes break the moment an elastic shrink drops the session to
p-1: the equality guard silently flips on every surviving rank, and the
literal peer loop still addresses the dead rank.
"""


def program(comm):
    if comm.size == 4:  # EXPECT: S14
        mode = "ring"
    else:
        mode = "star"
    total = 0
    for peer in range(4):
        if peer != comm.rank:
            with comm.phase("exchange"):
                comm.send(mode, peer, tag=7)  # EXPECT: S14
    for _ in range(comm.size - 1):
        with comm.phase("exchange"):
            total += len(comm.recv(tag=7))
    return total
