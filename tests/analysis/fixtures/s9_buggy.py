"""S9 fixture: a send whose destination never reaches a matching recv.

The module *does* contain a recv with the right tag class (so the
syntactic S2 is silent), but the model checker proves that rank 1 — the
send's folded destination — never executes it on any path at any
explored ``p``: only ranks > 1 take the draining branch.
"""

from repro.mpi import rank_program


@rank_program
def program(comm):  # RUNTIME: ByteConservationError
    with comm.phase("pipeline"):
        if comm.rank == 0:
            comm.send(b"work", dest=1, tag=7)  # EXPECT: S9
        elif comm.rank > 1:
            # only ranks >= 2 drain tag-7 work messages; rank 1 never does
            return comm.recv(source=0, tag=7)
    return None
