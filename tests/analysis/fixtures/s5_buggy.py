"""S5 fixture: wall clocks and unseeded randomness inside a rank
program."""

import random
import time

import numpy as np


def program(comm):
    t0 = time.time()  # EXPECT: S5
    jitter = random.random()  # EXPECT: S5
    rng = np.random.default_rng()  # EXPECT: S5
    sample = rng.standard_normal()
    with comm.phase("sync"):
        return comm.allreduce(t0 + jitter + sample)
