"""S7 clean twin: resident-state writes go through ``operand.cache()``.

Reads off ``operand.aux`` are always fine; only the *store* has to be
registered so the checkpoint layer snapshots it with the rank's blocks.
"""


def sddmm_prologue(comm, operand, z_local):
    cached = operand.aux.get("plan")
    if cached is not None:
        return cached
    with comm.phase("prepare"):
        rows = comm.alltoall([z_local] * comm.size)
    return operand.cache("plan", rows)
