"""S12 fixture: a pool checkout that leaks on an early-return path."""


def leaky_early_return(pool, query):
    slot = pool.checkout(timeout=30.0)  # EXPECT: S12
    if query is None:
        return None  # leaves without checkin: the pool loses this slot
    result = slot.session.multiply(query)
    pool.checkin(slot)
    return result
