"""S4 fixture: bytes/time booked outside any ``comm.phase`` block —
directly in a root, and in a helper reached without phase coverage."""


def _merge(comm, payload):
    comm.charge_touch(len(payload))  # EXPECT: S4


def program(comm):
    comm.charge_touch(1024)  # EXPECT: S4
    _merge(comm, b"xx")
    with comm.phase("sync"):
        return comm.allreduce(comm.rank)
