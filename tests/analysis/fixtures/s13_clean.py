"""S13 clean twin: every suppression carries its rationale in-line."""


def program(comm):  # spmdlint: disable=S4 -- demo: bytes are booked under the caller's phase
    comm.charge_touch(16)


def ring(comm):
    with comm.phase("ring"):
        comm.send(b"x", dest=0, tag=1)  # spmdlint: disable=S2 -- demo: the peer recv lives in another module
