"""S6 fixture: fused-exchange section set built from rank-dependent
data with no ``meta`` header for the peers to agree on."""


def program(comm):
    sections = [
        ("tile-%d" % t, [None] * comm.size) for t in range(comm.rank + 1)
    ]
    with comm.phase("fused"):
        return comm.alltoall_fused(sections)  # EXPECT: S6
