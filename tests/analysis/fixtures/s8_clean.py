"""S8 clean twin: rank-invariant trip counts, identical ordering."""

from repro.mpi import rank_program


def _reduce_steps(comm, steps):
    with comm.phase("work"):
        for _ in range(steps):
            comm.allreduce(1)


@rank_program
def program_helper_trip(comm):
    # every rank runs exactly comm.size iterations
    _reduce_steps(comm, comm.size)


@rank_program
def program_order(comm):
    with comm.phase("sync"):
        if comm.rank == 0:
            comm.barrier()
            total = comm.allreduce(1)
        else:
            comm.barrier()
            total = comm.allreduce(1)
    return total
