"""S11 fixture: values-only operand refresh with divergent reaching defs.

``update_operand`` asserts at runtime that the sparsity pattern is
unchanged; calling it on a variable that was *conditionally* rebound
means some path refreshes with a matrix whose pattern may differ.
"""


def stale_refresh(session, draw_pattern, redraw):
    pattern = None
    if redraw:
        pattern = draw_pattern()
    session.update_operand(pattern)  # EXPECT: S11
    return session.multiply(pattern)
