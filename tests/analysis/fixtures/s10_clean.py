"""S10 clean twin: close after the last use; handles stay home."""


def close_after_use(A, B, p):
    session = TsSession(A, p)
    handle = session.scatter(B)
    out = handle.gather()
    session.close()
    return out


def same_session_chain(A, B, p):
    session = TsSession(A, p)
    handle = session.scatter(B)
    handle = session.multiply(handle, gather=False).C
    out = handle.gather()
    session.close()
    return out


def maybe_closed_is_not_definite(A, B, p, early):
    # closed on only one path: the pass never flags a *possible* close
    session = TsSession(A, p)
    handle = session.scatter(B)
    if early:
        session.close()
    out = handle.gather()
    session.close()
    return out
