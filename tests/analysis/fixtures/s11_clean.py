"""S11 clean twin: the refreshed variable has one reaching definition."""


def fresh_refresh(session, draw_pattern):
    pattern = draw_pattern()
    session.update_operand(pattern)
    return session.multiply(pattern)


def refresh_inside_the_branch(session, draw_pattern, redraw):
    # rebinding and refresh live on the same path: one reaching def
    if redraw:
        pattern = draw_pattern()
        session.update_operand(pattern)
    return session
