"""Tests for metrics aggregation and reporting."""

import io

import pytest

from repro.analysis import (
    RunRecord,
    fmt_bytes,
    fmt_count,
    fmt_seconds,
    geometric_mean,
    parallel_efficiency,
    print_series,
    print_table,
    speedups,
)


def rec(alg, runtime, p=4, dataset="uk", d=128, sparsity=0.8):
    return RunRecord(alg, dataset, p, d, sparsity, runtime)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([5]) == pytest.approx(5.0)

    def test_skips_nonpositive(self):
        assert geometric_mean([0, 4]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0


class TestSpeedups:
    def test_pairwise_matching(self):
        records = [
            rec("SUMMA-2D", 10.0, p=4),
            rec("TS-SpGEMM", 2.0, p=4),
            rec("SUMMA-2D", 8.0, p=8),
            rec("TS-SpGEMM", 4.0, p=8),
        ]
        s = speedups(records, baseline="SUMMA-2D", target="TS-SpGEMM")
        assert sorted(s) == [2.0, 5.0]

    def test_unmatched_points_dropped(self):
        records = [rec("SUMMA-2D", 10.0, p=4), rec("TS-SpGEMM", 2.0, p=16)]
        assert speedups(records, "SUMMA-2D", "TS-SpGEMM") == []


class TestEfficiency:
    def test_perfect_scaling(self):
        records = [rec("x", 8.0, p=1), rec("x", 4.0, p=2), rec("x", 2.0, p=4)]
        eff = parallel_efficiency(records)
        assert eff[1] == pytest.approx(1.0)
        assert eff[2] == pytest.approx(1.0)
        assert eff[4] == pytest.approx(1.0)

    def test_degraded_scaling(self):
        records = [rec("x", 8.0, p=1), rec("x", 8.0, p=2)]
        eff = parallel_efficiency(records)
        assert eff[2] == pytest.approx(0.5)

    def test_empty(self):
        assert parallel_efficiency([]) == {}


class TestFormatters:
    def test_seconds(self):
        assert fmt_seconds(1.5) == "1.5s"
        assert fmt_seconds(0.0025) == "2.5ms"
        assert fmt_seconds(2.5e-6) == "2.5us"
        assert fmt_seconds(0) == "0"

    def test_bytes(self):
        assert fmt_bytes(2_500_000) == "2.5MB"
        assert fmt_bytes(1234) == "1.23KB"
        assert fmt_bytes(12) == "12B"
        assert fmt_bytes(0) == "0"

    def test_count(self):
        assert fmt_count(1_500_000) == "1.5M"
        assert fmt_count(2_000) == "2K"
        assert fmt_count(42) == "42"


class TestPrinting:
    def test_table_aligns(self):
        buf = io.StringIO()
        print_table("T", ["a", "longer"], [[1, 2], [333, 4]], file=buf)
        out = buf.getvalue()
        assert "== T ==" in out
        assert "a" in out and "longer" in out
        assert "333" in out

    def test_series(self):
        buf = io.StringIO()
        print_series(
            "S",
            "p",
            [1, 2],
            {"alg": [1.0, 0.5], "other": [2.0, None]},
            file=buf,
        )
        out = buf.getvalue()
        assert "alg" in out and "other" in out
        assert "-" in out  # the None cell
