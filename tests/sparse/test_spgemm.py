"""SpGEMM kernel tests: all methods, all semirings, vs dense references."""

import numpy as np
import pytest

from repro.sparse import (
    BOOL_AND_OR,
    MIN_PLUS,
    PLUS_TIMES,
    SEL2ND_MIN,
    CsrMatrix,
    spgemm,
    spgemm_esc,
    spgemm_flops,
    spgemm_hash,
    spgemm_scipy,
    spgemm_spa,
)
from ..conftest import csr_from_dense, random_dense

METHODS = ["esc", "spa", "hash"]


def dense_semiring_matmul(a, b, semiring):
    """Reference dense semiring product (explicit loops, trusted)."""
    n, k = a.shape
    _, d = b.shape
    a_pattern = a != 0
    b_pattern = b != 0
    out = np.full((n, d), semiring.zero, dtype=semiring.dtype)
    written = np.zeros((n, d), dtype=bool)
    for i in range(n):
        for kk in range(k):
            if not a_pattern[i, kk]:
                continue
            for j in range(d):
                if not b_pattern[kk, j]:
                    continue
                prod = semiring.mul(
                    semiring.coerce(np.array(a[i, kk])),
                    semiring.coerce(np.array(b[kk, j])),
                )
                if written[i, j]:
                    out[i, j] = semiring.add(out[i, j], prod)
                else:
                    out[i, j] = prod
                    written[i, j] = True
    return out, written


def assert_matches_dense(c: CsrMatrix, expected, written):
    got = np.full(c.shape, None, dtype=object)
    dense = c.to_dense(zero=0)
    pattern = np.zeros(c.shape, dtype=bool)
    rows = c.row_ids()
    pattern[rows, c.indices] = True
    np.testing.assert_array_equal(pattern, written)
    if c.dtype == np.bool_:
        np.testing.assert_array_equal(dense[written], expected[written])
    else:
        np.testing.assert_allclose(
            dense[written].astype(float), expected[written].astype(float)
        )


class TestArithmetic:
    @pytest.mark.parametrize("method", METHODS + ["scipy", "auto"])
    def test_small_known_product(self, method):
        a = csr_from_dense([[1, 2], [0, 3]])
        b = csr_from_dense([[4, 0], [5, 6]])
        c, flops = spgemm(a, b, PLUS_TIMES, method=method)
        np.testing.assert_allclose(c.to_dense(), [[14, 12], [15, 18]])
        # B-row nnz per A nonzero: A(0,0)->1, A(0,1)->2, A(1,1)->2
        assert flops == 1 + 2 + 2

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("shape", [(5, 7, 3), (10, 10, 10), (8, 4, 16)])
    def test_random_vs_scipy(self, rng, method, shape):
        n, k, d = shape
        a = csr_from_dense(random_dense(rng, n, k, 0.3))
        b = csr_from_dense(random_dense(rng, k, d, 0.4))
        c, flops = spgemm(a, b, PLUS_TIMES, method=method)
        c_ref, flops_ref = spgemm_scipy(a, b)
        np.testing.assert_allclose(c.to_dense(), c_ref.to_dense())
        assert flops == flops_ref

    def test_empty_operands(self):
        a = CsrMatrix.empty((3, 4))
        b = CsrMatrix.empty((4, 2))
        for method in METHODS:
            c, flops = spgemm(a, b, PLUS_TIMES, method=method)
            assert c.nnz == 0 and flops == 0
            assert c.shape == (3, 2)

    def test_dimension_mismatch(self):
        a = CsrMatrix.empty((3, 4))
        b = CsrMatrix.empty((5, 2))
        for method in METHODS + ["scipy"]:
            with pytest.raises(ValueError, match="mismatch"):
                spgemm(a, b, PLUS_TIMES, method=method)

    def test_numerical_cancellation_kept_as_explicit_zero(self):
        # (+1)*1 + (-1)*1 = 0 stays a stored entry (standard SpGEMM).
        a = csr_from_dense([[1, -1]])
        b = csr_from_dense([[1, 0], [1, 0]])
        c, _ = spgemm(a, b, PLUS_TIMES, method="esc")
        assert c.nnz == 1
        assert c.data[0] == 0.0


class TestSemirings:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize(
        "semiring", [PLUS_TIMES, BOOL_AND_OR, MIN_PLUS, SEL2ND_MIN]
    )
    def test_random_vs_dense_reference(self, rng, method, semiring):
        dtype = np.bool_ if semiring is BOOL_AND_OR else np.float64
        a = random_dense(rng, 6, 8, 0.35, dtype=dtype)
        b = random_dense(rng, 8, 5, 0.4, dtype=dtype)
        c, _ = spgemm(csr_from_dense(a), csr_from_dense(b), semiring, method=method)
        expected, written = dense_semiring_matmul(a, b, semiring)
        assert_matches_dense(c, expected, written)

    def test_bool_bfs_step_semantics(self):
        # adjacency: 0->1, 1->2 ; frontier column at vertex 0
        adj = csr_from_dense(
            np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=bool).T
        )  # transpose: row r holds in-neighbors... use A^T @ F convention
        frontier = csr_from_dense(np.array([[1], [0], [0]], dtype=bool))
        nxt, _ = spgemm(adj, frontier, BOOL_AND_OR)
        np.testing.assert_array_equal(
            nxt.to_dense(zero=False).ravel(), [False, True, False]
        )

    def test_scipy_rejects_non_arithmetic(self):
        a = CsrMatrix.empty((2, 2))
        with pytest.raises(ValueError, match="plus_times"):
            spgemm(a, a, BOOL_AND_OR, method="scipy")

    def test_auto_dispatches_bool_to_esc(self):
        a = csr_from_dense(np.eye(3, dtype=bool))
        c, _ = spgemm(a, a, BOOL_AND_OR, method="auto")
        assert c.dtype == np.bool_
        np.testing.assert_array_equal(c.to_dense(zero=False), np.eye(3, dtype=bool))

    def test_unknown_method(self):
        a = CsrMatrix.empty((1, 1))
        with pytest.raises(ValueError, match="unknown spgemm method"):
            spgemm(a, a, PLUS_TIMES, method="btree")


class TestFlops:
    def test_flops_formula(self, rng):
        a = csr_from_dense(random_dense(rng, 7, 9, 0.3))
        b = csr_from_dense(random_dense(rng, 9, 4, 0.5))
        expected = sum(
            b.row_nnz()[int(c)] for c in a.indices
        )
        assert spgemm_flops(a, b) == expected

    def test_flops_zero_for_empty(self):
        assert spgemm_flops(CsrMatrix.empty((2, 3)), CsrMatrix.empty((3, 4))) == 0

    def test_all_methods_report_same_flops(self, rng):
        a = csr_from_dense(random_dense(rng, 6, 6, 0.4))
        b = csr_from_dense(random_dense(rng, 6, 3, 0.5))
        flops = {m: spgemm(a, b, PLUS_TIMES, method=m)[1] for m in METHODS}
        assert len(set(flops.values())) == 1
        assert list(flops.values())[0] == spgemm_flops(a, b)


class TestTallSkinny:
    """The paper's regime: square A times tall-skinny sparse B."""

    @pytest.mark.parametrize("d", [1, 4, 16])
    def test_ts_shapes(self, rng, d):
        n = 40
        a = csr_from_dense(random_dense(rng, n, n, 0.1))
        b = csr_from_dense(random_dense(rng, n, d, 0.2))
        c, _ = spgemm(a, b, PLUS_TIMES, method="esc")
        c_ref, _ = spgemm_scipy(a, b)
        assert c.shape == (n, d)
        np.testing.assert_allclose(c.to_dense(), c_ref.to_dense())

    def test_output_sparsity_bounded_by_d(self, rng):
        n, d = 30, 8
        a = csr_from_dense(random_dense(rng, n, n, 0.15))
        b = csr_from_dense(random_dense(rng, n, d, 0.3))
        c, _ = spgemm(a, b, PLUS_TIMES)
        assert (c.row_nnz() <= d).all()
