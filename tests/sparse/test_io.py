"""Tests for the MatrixMarket subset reader/writer."""

import numpy as np
import pytest

from repro.sparse import CsrMatrix, read_matrix_market, write_matrix_market
from ..conftest import csr_from_dense, random_dense


class TestRoundtrip:
    def test_random_roundtrip(self, rng, tmp_path):
        mat = csr_from_dense(random_dense(rng, 9, 7, 0.3))
        path = tmp_path / "m.mtx"
        write_matrix_market(mat, path)
        back = read_matrix_market(path)
        assert back.equal(mat)

    def test_empty_matrix(self, tmp_path):
        mat = CsrMatrix.empty((4, 5))
        path = tmp_path / "e.mtx"
        write_matrix_market(mat, path)
        back = read_matrix_market(path)
        assert back.shape == (4, 5) and back.nnz == 0


class TestReader:
    def test_pattern_field(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n"
            "1 1\n"
            "2 2\n"
        )
        m = read_matrix_market(path)
        np.testing.assert_allclose(m.to_dense(), np.eye(2))

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 5.0\n"
            "3 3 7.0\n"
        )
        m = read_matrix_market(path)
        expected = np.zeros((3, 3))
        expected[1, 0] = expected[0, 1] = 5.0
        expected[2, 2] = 7.0
        np.testing.assert_allclose(m.to_dense(), expected)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "% another\n"
            "1 1 1\n"
            "1 1 2.5\n"
        )
        m = read_matrix_market(path)
        assert m.data[0] == 2.5

    def test_bad_banner(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix\n1 1 0\n")
        with pytest.raises(ValueError, match="banner"):
            read_matrix_market(path)

    def test_unsupported_field(self, tmp_path):
        path = tmp_path / "cx.mtx"
        path.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")
        with pytest.raises(ValueError, match="field"):
            read_matrix_market(path)

    def test_entry_count_mismatch(self, tmp_path):
        path = tmp_path / "mm.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n"
        )
        with pytest.raises(ValueError, match="expected 3"):
            read_matrix_market(path)
