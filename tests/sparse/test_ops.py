"""Tests for structural/elementwise CSR operations."""

import numpy as np
import pytest

from repro.sparse import (
    BOOL_AND_OR,
    PLUS_TIMES,
    CsrMatrix,
    ewise_add,
    extract_col_range,
    extract_row_range,
    extract_rows,
    nnz_of_rows,
    pattern_difference,
    row_topk,
    spmm_dense,
    transpose,
)
from ..conftest import csr_from_dense, random_dense


class TestTranspose:
    def test_known(self):
        m = csr_from_dense([[1, 2, 0], [0, 0, 3]])
        t = transpose(m)
        np.testing.assert_allclose(t.to_dense(), [[1, 0], [2, 0], [0, 3]])

    def test_random_matches_numpy(self, rng):
        dense = random_dense(rng, 9, 6, 0.3)
        t = transpose(csr_from_dense(dense))
        np.testing.assert_allclose(t.to_dense(), dense.T)

    def test_involution(self, rng):
        dense = random_dense(rng, 5, 8, 0.4)
        m = csr_from_dense(dense)
        assert transpose(transpose(m)).equal(m)

    def test_empty(self):
        t = transpose(CsrMatrix.empty((3, 5)))
        assert t.shape == (5, 3) and t.nnz == 0

    def test_result_validates(self, rng):
        dense = random_dense(rng, 7, 7, 0.5)
        t = transpose(csr_from_dense(dense))
        # re-validate invariants explicitly
        CsrMatrix(t.shape, t.indptr, t.indices, t.data, check=True)


class TestExtractRows:
    def test_selection_and_order(self, rng):
        dense = random_dense(rng, 6, 5, 0.4)
        m = csr_from_dense(dense)
        sel = extract_rows(m, np.array([4, 0, 2]))
        np.testing.assert_allclose(sel.to_dense(), dense[[4, 0, 2]])

    def test_repeated_rows_allowed(self):
        m = csr_from_dense([[1, 0], [0, 2]])
        sel = extract_rows(m, np.array([1, 1]))
        np.testing.assert_allclose(sel.to_dense(), [[0, 2], [0, 2]])

    def test_empty_selection(self):
        m = csr_from_dense([[1, 0], [0, 2]])
        sel = extract_rows(m, np.array([], dtype=np.int64))
        assert sel.shape == (0, 2) and sel.nnz == 0

    def test_out_of_range(self):
        m = CsrMatrix.empty((2, 2))
        with pytest.raises(IndexError):
            extract_rows(m, np.array([2]))

    def test_nnz_of_rows(self, rng):
        dense = random_dense(rng, 6, 5, 0.4)
        m = csr_from_dense(dense)
        ids = np.array([0, 3])
        assert nnz_of_rows(m, ids) == (dense[ids] != 0).sum()


class TestExtractRanges:
    def test_col_range_reindexed(self, rng):
        dense = random_dense(rng, 5, 10, 0.4)
        m = csr_from_dense(dense)
        sub = extract_col_range(m, 3, 7)
        assert sub.shape == (5, 4)
        np.testing.assert_allclose(sub.to_dense(), dense[:, 3:7])

    def test_col_range_keep_space(self, rng):
        dense = random_dense(rng, 4, 8, 0.5)
        m = csr_from_dense(dense)
        sub = extract_col_range(m, 2, 5, reindex=False)
        assert sub.shape == m.shape
        expected = np.zeros_like(dense)
        expected[:, 2:5] = dense[:, 2:5]
        np.testing.assert_allclose(sub.to_dense(), expected)

    def test_col_range_bounds(self):
        m = CsrMatrix.empty((2, 4))
        with pytest.raises(IndexError):
            extract_col_range(m, 2, 6)
        with pytest.raises(IndexError):
            extract_col_range(m, -1, 2)

    def test_empty_col_range(self, rng):
        m = csr_from_dense(random_dense(rng, 3, 6, 0.5))
        sub = extract_col_range(m, 4, 4)
        assert sub.shape == (3, 0) and sub.nnz == 0

    def test_row_range_views(self, rng):
        dense = random_dense(rng, 8, 5, 0.4)
        m = csr_from_dense(dense)
        sub = extract_row_range(m, 2, 6)
        np.testing.assert_allclose(sub.to_dense(), dense[2:6])
        # zero-copy: data shares memory with parent
        assert np.shares_memory(sub.data, m.data)

    def test_row_range_bounds(self):
        with pytest.raises(IndexError):
            extract_row_range(CsrMatrix.empty((3, 3)), 1, 5)


class TestPatternOps:
    def test_difference_removes_visited(self):
        n = csr_from_dense(np.array([[1, 1, 0], [0, 1, 1]], dtype=bool))
        s = csr_from_dense(np.array([[1, 0, 0], [0, 0, 1]], dtype=bool))
        f = pattern_difference(n, s)
        np.testing.assert_array_equal(
            f.to_dense(zero=False), [[False, True, False], [False, True, False]]
        )

    def test_difference_disjoint_keeps_all(self):
        a = csr_from_dense([[1, 0], [0, 2]])
        b = csr_from_dense([[0, 3], [4, 0]])
        assert pattern_difference(a, b).equal(a)

    def test_difference_identical_empties(self):
        a = csr_from_dense([[1, 2], [3, 0]])
        assert pattern_difference(a, a).nnz == 0

    def test_difference_shape_mismatch(self):
        with pytest.raises(ValueError):
            pattern_difference(CsrMatrix.empty((1, 2)), CsrMatrix.empty((2, 2)))

    def test_ewise_add_sums_overlap(self):
        a = csr_from_dense([[1, 0], [2, 0]])
        b = csr_from_dense([[3, 4], [0, 0]])
        c = ewise_add(a, b, PLUS_TIMES)
        np.testing.assert_allclose(c.to_dense(), [[4, 4], [2, 0]])

    def test_ewise_add_bool_union(self):
        a = csr_from_dense(np.array([[1, 0]], dtype=bool))
        b = csr_from_dense(np.array([[0, 1]], dtype=bool))
        c = ewise_add(a, b, BOOL_AND_OR)
        np.testing.assert_array_equal(c.to_dense(zero=False), [[True, True]])

    def test_ewise_add_empty_operand(self):
        a = csr_from_dense([[1.0, 2.0]])
        c = ewise_add(a, CsrMatrix.empty((1, 2)), PLUS_TIMES)
        assert c.equal(a)


class TestRowTopk:
    def test_keeps_largest_magnitude(self):
        m = csr_from_dense([[5, -7, 1, 3]])
        out = row_topk(m, 2)
        np.testing.assert_allclose(out.to_dense(), [[5, -7, 0, 0]])

    def test_rows_shorter_than_k_untouched(self):
        m = csr_from_dense([[1, 0, 0], [2, 3, 4]])
        out = row_topk(m, 2)
        # row 0 has 1 entry (< k) kept; row 1 keeps the two largest (3, 4)
        np.testing.assert_allclose(out.to_dense(), [[1, 0, 0], [0, 3, 4]])

    def test_k_zero_empties(self):
        m = csr_from_dense([[1, 2]])
        assert row_topk(m, 0).nnz == 0

    def test_k_larger_returns_self(self):
        m = csr_from_dense([[1, 2]])
        assert row_topk(m, 5) is m

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            row_topk(CsrMatrix.empty((1, 1)), -1)

    def test_column_order_preserved(self, rng):
        dense = random_dense(rng, 10, 12, 0.6)
        out = row_topk(csr_from_dense(dense), 3)
        CsrMatrix(out.shape, out.indptr, out.indices, out.data, check=True)
        assert (out.row_nnz() <= 3).all()


class TestSpmmDense:
    def test_matches_numpy(self, rng):
        dense_a = random_dense(rng, 6, 8, 0.3)
        dense_b = rng.random((8, 4))
        out, flops = spmm_dense(csr_from_dense(dense_a), dense_b)
        np.testing.assert_allclose(out, dense_a @ dense_b)
        assert flops == (dense_a != 0).sum() * 4

    def test_shape_check(self):
        with pytest.raises(ValueError):
            spmm_dense(CsrMatrix.empty((2, 3)), np.zeros((4, 2)))
