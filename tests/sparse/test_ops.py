"""Tests for structural/elementwise CSR operations."""

import numpy as np
import pytest

from repro.sparse import (
    BOOL_AND_OR,
    PLUS_TIMES,
    CsrMatrix,
    ewise_add,
    extract_col_range,
    extract_row_range,
    extract_rows,
    nnz_of_rows,
    pattern_difference,
    row_topk,
    spmm_dense,
    transpose,
)
from ..conftest import csr_from_dense, random_dense


class TestTranspose:
    def test_known(self):
        m = csr_from_dense([[1, 2, 0], [0, 0, 3]])
        t = transpose(m)
        np.testing.assert_allclose(t.to_dense(), [[1, 0], [2, 0], [0, 3]])

    def test_random_matches_numpy(self, rng):
        dense = random_dense(rng, 9, 6, 0.3)
        t = transpose(csr_from_dense(dense))
        np.testing.assert_allclose(t.to_dense(), dense.T)

    def test_involution(self, rng):
        dense = random_dense(rng, 5, 8, 0.4)
        m = csr_from_dense(dense)
        assert transpose(transpose(m)).equal(m)

    def test_empty(self):
        t = transpose(CsrMatrix.empty((3, 5)))
        assert t.shape == (5, 3) and t.nnz == 0

    def test_result_validates(self, rng):
        dense = random_dense(rng, 7, 7, 0.5)
        t = transpose(csr_from_dense(dense))
        # re-validate invariants explicitly
        CsrMatrix(t.shape, t.indptr, t.indices, t.data, check=True)


class TestExtractRows:
    def test_selection_and_order(self, rng):
        dense = random_dense(rng, 6, 5, 0.4)
        m = csr_from_dense(dense)
        sel = extract_rows(m, np.array([4, 0, 2]))
        np.testing.assert_allclose(sel.to_dense(), dense[[4, 0, 2]])

    def test_repeated_rows_allowed(self):
        m = csr_from_dense([[1, 0], [0, 2]])
        sel = extract_rows(m, np.array([1, 1]))
        np.testing.assert_allclose(sel.to_dense(), [[0, 2], [0, 2]])

    def test_empty_selection(self):
        m = csr_from_dense([[1, 0], [0, 2]])
        sel = extract_rows(m, np.array([], dtype=np.int64))
        assert sel.shape == (0, 2) and sel.nnz == 0

    def test_out_of_range(self):
        m = CsrMatrix.empty((2, 2))
        with pytest.raises(IndexError):
            extract_rows(m, np.array([2]))

    def test_nnz_of_rows(self, rng):
        dense = random_dense(rng, 6, 5, 0.4)
        m = csr_from_dense(dense)
        ids = np.array([0, 3])
        assert nnz_of_rows(m, ids) == (dense[ids] != 0).sum()


class TestExtractRanges:
    def test_col_range_reindexed(self, rng):
        dense = random_dense(rng, 5, 10, 0.4)
        m = csr_from_dense(dense)
        sub = extract_col_range(m, 3, 7)
        assert sub.shape == (5, 4)
        np.testing.assert_allclose(sub.to_dense(), dense[:, 3:7])

    def test_col_range_keep_space(self, rng):
        dense = random_dense(rng, 4, 8, 0.5)
        m = csr_from_dense(dense)
        sub = extract_col_range(m, 2, 5, reindex=False)
        assert sub.shape == m.shape
        expected = np.zeros_like(dense)
        expected[:, 2:5] = dense[:, 2:5]
        np.testing.assert_allclose(sub.to_dense(), expected)

    def test_col_range_bounds(self):
        m = CsrMatrix.empty((2, 4))
        with pytest.raises(IndexError):
            extract_col_range(m, 2, 6)
        with pytest.raises(IndexError):
            extract_col_range(m, -1, 2)

    def test_empty_col_range(self, rng):
        m = csr_from_dense(random_dense(rng, 3, 6, 0.5))
        sub = extract_col_range(m, 4, 4)
        assert sub.shape == (3, 0) and sub.nnz == 0

    def test_row_range_views(self, rng):
        dense = random_dense(rng, 8, 5, 0.4)
        m = csr_from_dense(dense)
        sub = extract_row_range(m, 2, 6)
        np.testing.assert_allclose(sub.to_dense(), dense[2:6])
        # zero-copy: data shares memory with parent
        assert np.shares_memory(sub.data, m.data)

    def test_row_range_bounds(self):
        with pytest.raises(IndexError):
            extract_row_range(CsrMatrix.empty((3, 3)), 1, 5)


class TestPatternOps:
    def test_difference_removes_visited(self):
        n = csr_from_dense(np.array([[1, 1, 0], [0, 1, 1]], dtype=bool))
        s = csr_from_dense(np.array([[1, 0, 0], [0, 0, 1]], dtype=bool))
        f = pattern_difference(n, s)
        np.testing.assert_array_equal(
            f.to_dense(zero=False), [[False, True, False], [False, True, False]]
        )

    def test_difference_disjoint_keeps_all(self):
        a = csr_from_dense([[1, 0], [0, 2]])
        b = csr_from_dense([[0, 3], [4, 0]])
        assert pattern_difference(a, b).equal(a)

    def test_difference_identical_empties(self):
        a = csr_from_dense([[1, 2], [3, 0]])
        assert pattern_difference(a, a).nnz == 0

    def test_difference_shape_mismatch(self):
        with pytest.raises(ValueError):
            pattern_difference(CsrMatrix.empty((1, 2)), CsrMatrix.empty((2, 2)))

    def test_ewise_add_sums_overlap(self):
        a = csr_from_dense([[1, 0], [2, 0]])
        b = csr_from_dense([[3, 4], [0, 0]])
        c = ewise_add(a, b, PLUS_TIMES)
        np.testing.assert_allclose(c.to_dense(), [[4, 4], [2, 0]])

    def test_ewise_add_bool_union(self):
        a = csr_from_dense(np.array([[1, 0]], dtype=bool))
        b = csr_from_dense(np.array([[0, 1]], dtype=bool))
        c = ewise_add(a, b, BOOL_AND_OR)
        np.testing.assert_array_equal(c.to_dense(zero=False), [[True, True]])

    def test_ewise_add_empty_operand(self):
        a = csr_from_dense([[1.0, 2.0]])
        c = ewise_add(a, CsrMatrix.empty((1, 2)), PLUS_TIMES)
        assert c.equal(a)

    def test_ewise_add_empty_operand_coerces_dtype(self):
        """An empty operand must not skip the semiring's dtype coercion."""
        a = csr_from_dense(np.array([[True, False]], dtype=bool))
        c = ewise_add(a, CsrMatrix.empty((1, 2), dtype=np.bool_), PLUS_TIMES)
        assert c.dtype == PLUS_TIMES.dtype
        c2 = ewise_add(CsrMatrix.empty((1, 2), dtype=np.bool_), a, PLUS_TIMES)
        assert c2.dtype == PLUS_TIMES.dtype

    def test_ewise_add_matches_coo_rebuild(self, rng):
        """The merge path must be bit-identical to the historical
        coo_to_csr rebuild across semirings and overlap patterns."""
        from repro.sparse import MIN_PLUS
        from repro.sparse.build import coo_to_csr

        for semiring in (PLUS_TIMES, BOOL_AND_OR, MIN_PLUS):
            for trial in range(5):
                da = random_dense(rng, 13, 17, 0.3)
                db = random_dense(rng, 13, 17, 0.3)
                a, b = csr_from_dense(da), csr_from_dense(db)
                if semiring is BOOL_AND_OR:
                    a, b = a.astype(np.bool_), b.astype(np.bool_)
                got = ewise_add(a, b, semiring)
                want = coo_to_csr(
                    np.concatenate([a.row_ids(), b.row_ids()]),
                    np.concatenate([a.indices, b.indices]),
                    np.concatenate(
                        [semiring.coerce(a.data), semiring.coerce(b.data)]
                    ),
                    a.shape,
                    semiring,
                )
                assert got.dtype == want.dtype
                np.testing.assert_array_equal(got.indptr, want.indptr)
                np.testing.assert_array_equal(got.indices, want.indices)
                np.testing.assert_array_equal(got.data, want.data)

    def test_pattern_ops_survive_32bit_key_overflow(self):
        """(row, col) keys must be computed in int64: with ncols large
        enough, ``row * ncols + col`` overflows 32-bit arithmetic for
        perfectly ordinary matrices."""
        ncols = 1 << 21  # 2 M columns
        nrows = 1 << 12  # rows up to 4095: keys up to ~2^33 > int32
        row_hi = nrows - 1
        key_hi = row_hi * ncols + 7
        assert key_hi > np.iinfo(np.int32).max  # the overflow premise

        def mat(entries):
            rows = np.array([r for r, _ in entries])
            cols = np.array([c for _, c in entries])
            counts = np.bincount(rows, minlength=nrows)
            indptr = np.concatenate([[0], np.cumsum(counts)])
            return CsrMatrix(
                (nrows, ncols), indptr, cols, np.ones(len(entries)), check=False
            )

        a = mat([(0, 3), (5, ncols - 1), (row_hi, 7)])
        b = mat([(5, ncols - 1), (row_hi, 7), (row_hi, ncols - 1)])
        diff = pattern_difference(a, b)
        assert [(int(r), int(c)) for r, c in zip(diff.row_ids(), diff.indices)] == [
            (0, 3)
        ]
        union = ewise_add(a, b, PLUS_TIMES)
        got = {
            (int(r), int(c)): v
            for r, c, v in zip(union.row_ids(), union.indices, union.data)
        }
        assert got == {
            (0, 3): 1.0,
            (5, ncols - 1): 2.0,
            (row_hi, 7): 2.0,
            (row_hi, ncols - 1): 1.0,
        }


class TestRowTopk:
    def test_keeps_largest_magnitude(self):
        m = csr_from_dense([[5, -7, 1, 3]])
        out = row_topk(m, 2)
        np.testing.assert_allclose(out.to_dense(), [[5, -7, 0, 0]])

    def test_rows_shorter_than_k_untouched(self):
        m = csr_from_dense([[1, 0, 0], [2, 3, 4]])
        out = row_topk(m, 2)
        # row 0 has 1 entry (< k) kept; row 1 keeps the two largest (3, 4)
        np.testing.assert_allclose(out.to_dense(), [[1, 0, 0], [0, 3, 4]])

    def test_k_zero_empties(self):
        m = csr_from_dense([[1, 2]])
        assert row_topk(m, 0).nnz == 0

    def test_k_larger_returns_self(self):
        m = csr_from_dense([[1, 2]])
        assert row_topk(m, 5) is m

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            row_topk(CsrMatrix.empty((1, 1)), -1)

    def test_column_order_preserved(self, rng):
        dense = random_dense(rng, 10, 12, 0.6)
        out = row_topk(csr_from_dense(dense), 3)
        CsrMatrix(out.shape, out.indptr, out.indices, out.data, check=True)
        assert (out.row_nnz() <= 3).all()


class TestSpmmDense:
    def test_matches_numpy(self, rng):
        dense_a = random_dense(rng, 6, 8, 0.3)
        dense_b = rng.random((8, 4))
        out, flops = spmm_dense(csr_from_dense(dense_a), dense_b)
        np.testing.assert_allclose(out, dense_a @ dense_b)
        assert flops == (dense_a != 0).sum() * 4

    def test_shape_check(self):
        with pytest.raises(ValueError):
            spmm_dense(CsrMatrix.empty((2, 3)), np.zeros((4, 2)))
