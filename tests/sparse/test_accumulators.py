"""Tests for the SPA and hash row accumulators."""

import numpy as np
import pytest

from repro.sparse import (
    BOOL_AND_OR,
    MIN_PLUS,
    PLUS_TIMES,
    HashAccumulator,
    SpaAccumulator,
)


@pytest.fixture(params=["spa", "hash"])
def make_acc(request):
    def factory(d, semiring):
        if request.param == "spa":
            return SpaAccumulator(d, semiring)
        return HashAccumulator(semiring)

    return factory


class TestAccumulators:
    def test_single_row_accumulation(self, make_acc):
        acc = make_acc(5, PLUS_TIMES)
        acc.reset()
        acc.accumulate(2.0, np.array([1, 3]), np.array([10.0, 20.0]))
        acc.accumulate(3.0, np.array([3, 4]), np.array([1.0, 2.0]))
        cols, vals = acc.extract()
        np.testing.assert_array_equal(cols, [1, 3, 4])
        np.testing.assert_allclose(vals, [20.0, 43.0, 6.0])

    def test_reset_clears_state(self, make_acc):
        acc = make_acc(4, PLUS_TIMES)
        acc.reset()
        acc.accumulate(1.0, np.array([0]), np.array([1.0]))
        acc.reset()
        cols, vals = acc.extract()
        assert len(cols) == 0 and len(vals) == 0

    def test_bool_semiring(self, make_acc):
        acc = make_acc(3, BOOL_AND_OR)
        acc.reset()
        acc.accumulate(True, np.array([0, 2]), np.array([True, False]))
        acc.accumulate(True, np.array([0]), np.array([False]))
        cols, vals = acc.extract()
        np.testing.assert_array_equal(cols, [0, 2])
        np.testing.assert_array_equal(vals, [True, False])

    def test_min_plus_semiring(self, make_acc):
        acc = make_acc(2, MIN_PLUS)
        acc.reset()
        acc.accumulate(1.0, np.array([0]), np.array([10.0]))  # 11
        acc.accumulate(2.0, np.array([0]), np.array([3.0]))  # 5 -> min
        cols, vals = acc.extract()
        np.testing.assert_allclose(vals, [5.0])

    def test_columns_sorted(self, make_acc):
        acc = make_acc(10, PLUS_TIMES)
        acc.reset()
        acc.accumulate(1.0, np.array([7, 9]), np.array([1.0, 1.0]))
        acc.accumulate(1.0, np.array([2]), np.array([1.0]))
        cols, _ = acc.extract()
        assert list(cols) == sorted(cols)

    def test_empty_extract(self, make_acc):
        acc = make_acc(3, PLUS_TIMES)
        acc.reset()
        cols, vals = acc.extract()
        assert len(cols) == 0 and len(vals) == 0


class TestSpaSpecifics:
    def test_generation_stamps_avoid_full_reset(self):
        acc = SpaAccumulator(1000, PLUS_TIMES)
        for gen in range(5):
            acc.reset()
            acc.accumulate(1.0, np.array([gen]), np.array([1.0]))
            cols, vals = acc.extract()
            np.testing.assert_array_equal(cols, [gen])
            np.testing.assert_allclose(vals, [1.0])

    def test_values_array_is_length_d(self):
        acc = SpaAccumulator(128, PLUS_TIMES)
        assert len(acc.values) == 128
