"""Tests for the validated CSR container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import CsrMatrix


def make_simple():
    # [[1, 0, 2],
    #  [0, 0, 0],
    #  [3, 4, 0]]
    return CsrMatrix(
        (3, 3),
        indptr=[0, 2, 2, 4],
        indices=[0, 2, 0, 1],
        data=[1.0, 2.0, 3.0, 4.0],
    )


class TestConstructionAndValidation:
    def test_basic_properties(self):
        m = make_simple()
        assert m.shape == (3, 3)
        assert m.nnz == 4
        assert m.nrows == 3 and m.ncols == 3
        assert list(m.row_nnz()) == [2, 0, 2]

    def test_indptr_length_validated(self):
        with pytest.raises(ValueError, match="indptr"):
            CsrMatrix((2, 2), [0, 1], [0], [1.0])

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            CsrMatrix((1, 2), [1, 1], [], [])

    def test_indptr_nnz_consistency(self):
        with pytest.raises(ValueError, match="nnz"):
            CsrMatrix((1, 2), [0, 3], [0, 1], [1.0, 2.0])

    def test_indptr_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CsrMatrix((3, 3), [0, 2, 1, 2], [0, 1], [1.0, 2.0])

    def test_column_bounds_checked(self):
        with pytest.raises(ValueError, match="out of bounds"):
            CsrMatrix((1, 2), [0, 1], [5], [1.0])
        with pytest.raises(ValueError, match="out of bounds"):
            CsrMatrix((1, 2), [0, 1], [-1], [1.0])

    def test_unsorted_row_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            CsrMatrix((1, 3), [0, 2], [2, 0], [1.0, 2.0])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            CsrMatrix((1, 3), [0, 2], [1, 1], [1.0, 2.0])

    def test_sorted_across_row_boundary_ok(self):
        # last index of row 0 > first index of row 1 is fine
        m = CsrMatrix((2, 3), [0, 2, 3], [1, 2, 0], [1, 2, 3])
        assert m.nnz == 3

    def test_data_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            CsrMatrix((1, 3), [0, 2], [0, 1], [1.0])


class TestConvertersAndAccessors:
    def test_dense_roundtrip(self):
        dense = np.array([[0, 1, 0], [2, 0, 3], [0, 0, 0]], dtype=float)
        m = CsrMatrix.from_dense(dense)
        assert m.nnz == 3
        np.testing.assert_array_equal(m.to_dense(), dense)

    def test_scipy_roundtrip(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((6, 8)) < 0.3) * rng.random((6, 8))
        m = CsrMatrix.from_scipy(sp.csr_matrix(dense))
        np.testing.assert_allclose(m.to_scipy().toarray(), dense)

    def test_from_scipy_dedupes_and_sorts(self):
        coo = sp.coo_matrix(([1.0, 2.0], ([0, 0], [1, 1])), shape=(1, 3))
        m = CsrMatrix.from_scipy(coo)
        assert m.nnz == 1
        assert m.data[0] == 3.0

    def test_bool_data_to_scipy_upcasts(self):
        m = CsrMatrix((1, 2), [0, 1], [0], np.array([True]))
        assert m.to_scipy().dtype == np.float64

    def test_empty_and_identity(self):
        e = CsrMatrix.empty((3, 4))
        assert e.nnz == 0 and e.shape == (3, 4)
        i = CsrMatrix.identity(3)
        np.testing.assert_array_equal(i.to_dense(), np.eye(3))

    def test_row_accessor(self):
        m = make_simple()
        cols, vals = m.row(0)
        np.testing.assert_array_equal(cols, [0, 2])
        np.testing.assert_array_equal(vals, [1.0, 2.0])
        cols, vals = m.row(1)
        assert len(cols) == 0

    def test_row_ids(self):
        m = make_simple()
        np.testing.assert_array_equal(m.row_ids(), [0, 0, 2, 2])

    def test_nonzero_columns(self):
        m = make_simple()
        np.testing.assert_array_equal(m.nonzero_columns(), [0, 1, 2])
        e = CsrMatrix.empty((2, 5))
        assert len(e.nonzero_columns()) == 0

    def test_astype_and_copy_independent(self):
        m = make_simple()
        b = m.astype(np.bool_)
        assert b.data.dtype == np.bool_
        c = m.copy()
        c.data[0] = 99
        assert m.data[0] == 1.0

    def test_prune_zeros(self):
        m = CsrMatrix((2, 3), [0, 2, 3], [0, 1, 2], [0.0, 5.0, 0.0])
        pruned = m.prune_zeros()
        assert pruned.nnz == 1
        assert pruned.data[0] == 5.0
        assert list(pruned.row_nnz()) == [1, 0]

    def test_prune_zeros_noop_returns_self(self):
        m = make_simple()
        assert m.prune_zeros() is m

    def test_nbytes_estimate_counts_all_arrays(self):
        m = make_simple()
        expected = m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
        assert m.nbytes_estimate() == expected


class TestEquality:
    def test_equal_true(self):
        assert make_simple().equal(make_simple())

    def test_equal_different_shape(self):
        a = CsrMatrix.empty((2, 2))
        b = CsrMatrix.empty((2, 3))
        assert not a.equal(b)

    def test_equal_different_pattern(self):
        a = CsrMatrix((1, 3), [0, 1], [0], [1.0])
        b = CsrMatrix((1, 3), [0, 1], [1], [1.0])
        assert not a.equal(b)

    def test_equal_close_values(self):
        a = CsrMatrix((1, 2), [0, 1], [0], [1.0])
        b = CsrMatrix((1, 2), [0, 1], [0], [1.0 + 1e-14])
        assert a.equal(b)

    def test_equal_bool(self):
        a = CsrMatrix((1, 2), [0, 1], [0], np.array([True]))
        b = CsrMatrix((1, 2), [0, 1], [0], np.array([True]))
        assert a.equal(b)
