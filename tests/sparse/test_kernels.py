"""Kernel dispatch registry tests: cross-kernel output equivalence.

Every kernel registered in :mod:`repro.sparse.kernels` must produce
*identical* ``(indptr, indices, data)`` output — same pattern, including
explicit zeros, bit-equal values — on every input and semiring it
supports.  Values are integer-valued so floating-point addition is exact
regardless of the accumulation order a kernel uses.
"""

import numpy as np
import pytest

from repro.core import TsConfig
from repro.sparse import (
    BOOL_AND_OR,
    DEFAULT_KERNEL,
    MIN_PLUS,
    PLUS_TIMES,
    CsrMatrix,
    available_kernels,
    dispatch_spgemm,
    dispatch_spmm,
    get_kernel,
    random_csr,
    register_kernel,
    resolve_spgemm,
)
from ..conftest import csr_from_dense, random_dense

CSR_KERNELS = available_kernels()
SEMIRINGS = [PLUS_TIMES, MIN_PLUS, BOOL_AND_OR]


def _integerize(mat: CsrMatrix, rng) -> CsrMatrix:
    """Replace values with small integers so float addition is exact and
    bit-equality holds regardless of a kernel's accumulation order."""
    mat.data[:] = rng.integers(1, 10, size=mat.nnz)
    return mat


def _case_random(rng):
    """Seeded random operands in the paper's tall-skinny regime."""
    a = _integerize(random_csr(60, 60, nnz_per_row=5, rng=rng), rng)
    b = _integerize(random_csr(60, 24, nnz_per_row=6, rng=rng), rng)
    return a, b


def _case_empty_rows(rng):
    """Operands with interleaved all-zero rows (and an empty B row)."""
    a_dense = random_dense(rng, 24, 18, 0.3)
    a_dense[::3] = 0  # every third A row empty
    b_dense = random_dense(rng, 18, 7, 0.4)
    b_dense[1::2] = 0  # every second B row empty
    return csr_from_dense(a_dense), csr_from_dense(b_dense)


def _case_duplicate_heavy(rng):
    """Dense-ish operands: every output entry folds many duplicates."""
    a_dense = random_dense(rng, 30, 6, 0.9)
    b_dense = random_dense(rng, 6, 5, 0.9)
    return csr_from_dense(a_dense), csr_from_dense(b_dense)


CASES = {
    "random": _case_random,
    "empty-rows": _case_empty_rows,
    "duplicate-heavy": _case_duplicate_heavy,
}


def _coerce(mat: CsrMatrix, semiring) -> CsrMatrix:
    return mat.astype(semiring.dtype)


class TestCrossKernelEquivalence:
    @pytest.mark.parametrize("kernel", CSR_KERNELS)
    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
    def test_identical_output(self, rng, kernel, case, semiring):
        spec = get_kernel(kernel)
        if not spec.supports(semiring):
            pytest.skip(f"{kernel} does not support {semiring.name}")
        a, b = CASES[case](rng)
        a, b = _coerce(a, semiring), _coerce(b, semiring)
        reference, ref_flops = dispatch_spgemm(a, b, semiring, DEFAULT_KERNEL)
        got, flops = dispatch_spgemm(a, b, semiring, kernel)
        assert got.shape == reference.shape
        np.testing.assert_array_equal(got.indptr, reference.indptr)
        np.testing.assert_array_equal(got.indices, reference.indices)
        np.testing.assert_array_equal(got.data, reference.data)
        assert flops == ref_flops

    @pytest.mark.parametrize("kernel", [k for k in CSR_KERNELS if k != "scipy"])
    def test_explicit_zero_from_cancellation_kept(self, kernel):
        # (+1)*1 + (-1)*1 = 0 stays a stored entry in every kernel; scipy
        # is exempt — its matmul canonicalizes away cancelled entries.
        a = csr_from_dense([[1, -1]])
        b = csr_from_dense([[1, 0], [1, 0]])
        c, _ = dispatch_spgemm(a, b, PLUS_TIMES, kernel)
        assert c.nnz == 1
        assert c.data[0] == 0.0

    @pytest.mark.parametrize("kernel", CSR_KERNELS)
    def test_empty_operands(self, kernel):
        a = CsrMatrix.empty((3, 4))
        b = CsrMatrix.empty((4, 2))
        c, flops = dispatch_spgemm(a, b, PLUS_TIMES, kernel)
        assert c.shape == (3, 2) and c.nnz == 0 and flops == 0

    @pytest.mark.parametrize("kernel", CSR_KERNELS)
    def test_dimension_mismatch(self, kernel):
        a = CsrMatrix.empty((3, 4))
        b = CsrMatrix.empty((5, 2))
        with pytest.raises(ValueError, match="mismatch"):
            dispatch_spgemm(a, b, PLUS_TIMES, kernel)


class TestRegistry:
    def test_issue_kernels_registered(self):
        for name in ("esc-vectorized", "spa", "hash", "scipy"):
            assert name in CSR_KERNELS
        assert "dense" in available_kernels("dense")

    def test_default_is_vectorized_esc(self):
        assert DEFAULT_KERNEL == "esc-vectorized"
        assert get_kernel(DEFAULT_KERNEL).vectorized
        # Config defaults to "auto": scipy's C fast path for arithmetic
        # float data, the vectorized ESC default for every other semiring.
        assert TsConfig().kernel == "auto"
        assert resolve_spgemm("auto", MIN_PLUS).name == DEFAULT_KERNEL

    def test_spa_restricted_to_identity_safe_semirings(self):
        # max_times' zero (0.0) is not an identity for negative products;
        # the scatter-fold SPA kernel must refuse rather than be wrong.
        from repro.sparse import MAX_TIMES

        assert not get_kernel("spa").supports(MAX_TIMES)
        a = csr_from_dense([[-1.0]])
        b = csr_from_dense([[2.0]])
        expected, _ = dispatch_spgemm(a, b, MAX_TIMES, DEFAULT_KERNEL)
        assert expected.data[0] == -2.0
        with pytest.raises(ValueError, match="spa"):
            dispatch_spgemm(a, b, MAX_TIMES, "spa")
        # Seed-compatible facade: method='spa' falls back to the exact
        # scalar rowwise kernel instead of raising or being wrong.
        from repro.sparse import spgemm, spgemm_spa

        for result in (spgemm(a, b, MAX_TIMES, method="spa")[0],
                       spgemm_spa(a, b, MAX_TIMES)[0]):
            assert result.data[0] == -2.0

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("btree")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel("spa", vectorized=True)(lambda a, b, s: None)

    def test_config_validates_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            TsConfig(kernel="btree")
        assert TsConfig(kernel="auto").kernel == "auto"

    def test_auto_resolution(self):
        a = csr_from_dense([[1.0]])
        assert resolve_spgemm("auto", PLUS_TIMES, a).name == "scipy"
        assert resolve_spgemm("auto", BOOL_AND_OR).name == DEFAULT_KERNEL
        bool_a = a.astype(np.bool_)
        assert resolve_spgemm("auto", PLUS_TIMES, bool_a).name == DEFAULT_KERNEL

    def test_auto_prefers_spa_for_small_d_non_arithmetic(self):
        """ROADMAP follow-up: batched SPA wins the microbench (~83x vs
        ~19x over the seed path) on small-d identity-safe semirings, so
        auto picks it when the output width is known and cache-resident;
        scipy keeps arithmetic float data, ESC everything else."""
        from repro.sparse.kernels import SPA_AUTO_MAX_D

        a = csr_from_dense([[1.0]])
        # known small d, identity-safe non-arithmetic semiring -> spa
        assert resolve_spgemm("auto", BOOL_AND_OR, d=64).name == "spa"
        assert resolve_spgemm("auto", MIN_PLUS, d=SPA_AUTO_MAX_D).name == "spa"
        assert resolve_spgemm("auto", PLUS_TIMES, a.astype(np.bool_), d=64).name == "spa"
        # beyond the SPA cache crossover -> the any-semiring default
        assert (
            resolve_spgemm("auto", BOOL_AND_OR, d=SPA_AUTO_MAX_D + 1).name
            == DEFAULT_KERNEL
        )
        # non-identity-safe semirings can never take the SPA scratch
        from repro.sparse import MAX_TIMES

        assert resolve_spgemm("auto", MAX_TIMES, d=64).name == DEFAULT_KERNEL
        # arithmetic float data keeps scipy's C path regardless of d
        assert resolve_spgemm("auto", PLUS_TIMES, a, d=64).name == "scipy"

    def test_dispatch_auto_routes_bool_to_spa(self):
        rng = np.random.default_rng(0)
        a = csr_from_dense(random_dense(rng, 20, 20, 0.3, dtype=np.bool_))
        b = csr_from_dense(random_dense(rng, 20, 8, 0.4, dtype=np.bool_))
        via_auto, _ = dispatch_spgemm(a, b, BOOL_AND_OR, "auto")
        via_spa, _ = dispatch_spgemm(a, b, BOOL_AND_OR, "spa")
        assert via_auto.equal(via_spa)

    def test_strict_default_rejects_unsupported_semiring(self):
        # Numeric paths never silently substitute a forced kernel.
        with pytest.raises(ValueError, match="plus_times"):
            resolve_spgemm("scipy", BOOL_AND_OR)

    def test_lenient_degrades_to_default(self):
        # The tiled algorithm's boolean symbolic phase (the one lenient
        # call site) relies on this.
        assert resolve_spgemm("scipy", BOOL_AND_OR, strict=False).name == DEFAULT_KERNEL

    def test_spgemm_kernel_rejected_as_dense(self):
        a = csr_from_dense([[1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="dense"):
            dispatch_spmm(a, np.eye(2), kernel="spa")

    def test_dense_kernel_rejected_as_spgemm(self):
        a = csr_from_dense([[1.0]])
        with pytest.raises(ValueError, match="not an SpGEMM kernel"):
            dispatch_spgemm(a, a, PLUS_TIMES, "dense")

    def test_dispatch_spmm_matches_dense_product(self, rng):
        a = csr_from_dense(random_dense(rng, 9, 6, 0.4))
        dense_b = rng.random((6, 3))
        product, flops = dispatch_spmm(a, dense_b)
        np.testing.assert_allclose(product, a.to_dense() @ dense_b)
        assert flops == a.nnz * 3


class TestForcedKernelEndToEnd:
    """A forced kernel flows from TsConfig through the tiled algorithm."""

    @pytest.mark.parametrize("kernel", ["spa", "hash", "scipy", "spa-rowwise"])
    def test_tiled_multiply_all_kernels_agree(self, rng, kernel):
        from repro.core import ts_spgemm

        a = random_csr(48, 48, nnz_per_row=4, rng=rng)
        b = random_csr(48, 8, nnz_per_row=3, rng=rng)
        reference = ts_spgemm(a, b, 4, config=TsConfig()).C
        got = ts_spgemm(a, b, 4, config=TsConfig(kernel=kernel)).C
        assert got.equal(reference)
