"""Perf-regression smoke test for the vectorized kernel layer.

The tentpole claim — the vectorized batched kernels beat the seed's
scalar per-row path by ≥5× on the ``bench_micro_accumulators`` workload
(A: 400×400 @ 8 nnz/row, B: 400×64 @ 12 nnz/row) — is *measured* here on
every test run, not asserted in a doc.  Measured locally the gap is
~15-20×, so the 5× floor keeps plenty of headroom for CI jitter while
still catching a de-vectorization regression (any per-product Python loop
sneaking back into the hot path costs well over 5×).
"""

import time

import numpy as np
import pytest

from repro.sparse import PLUS_TIMES, dispatch_spgemm, random_csr

#: The bench_micro_accumulators workload (kept in sync with the bench).
N, D, A_NNZ_PER_ROW, B_NNZ_PER_ROW = 400, 64, 8, 12

#: Required speedup of the vectorized default over the seed per-row path.
MIN_SPEEDUP = 5.0


def _workload():
    rng = np.random.default_rng(0)
    a = random_csr(N, N, nnz_per_row=A_NNZ_PER_ROW, rng=rng)
    b = random_csr(N, D, nnz_per_row=B_NNZ_PER_ROW, rng=rng)
    return a, b


def _best_of(fn, repeats):
    """Minimum wall-clock over ``repeats`` runs (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.parametrize("rowwise", ["spa-rowwise", "hash-rowwise"])
def test_vectorized_esc_beats_seed_rowwise_path(rowwise):
    a, b = _workload()
    # Warm-up runs double as a correctness check on the exact workload.
    reference, _ = dispatch_spgemm(a, b, PLUS_TIMES, "esc-vectorized")
    slow, _ = dispatch_spgemm(a, b, PLUS_TIMES, rowwise)
    assert slow.equal(reference)

    t_vec = _best_of(lambda: dispatch_spgemm(a, b, PLUS_TIMES, "esc-vectorized"), 5)
    t_row = _best_of(lambda: dispatch_spgemm(a, b, PLUS_TIMES, rowwise), 2)
    speedup = t_row / t_vec
    assert speedup >= MIN_SPEEDUP, (
        f"esc-vectorized is only {speedup:.1f}x faster than {rowwise} "
        f"({t_vec * 1e3:.2f} ms vs {t_row * 1e3:.2f} ms); expected "
        f">= {MIN_SPEEDUP}x on the bench_micro_accumulators workload"
    )


#: Looser floor for the secondary kernels: the ≥5× tentpole claim is made
#: for the esc-vectorized default only; spa/hash (measured ~80×/~30×)
#: just need to clearly beat their scalar namesakes even on noisy CI.
BATCHED_MIN_SPEEDUP = 2.0


def test_batched_spa_and_hash_clearly_beat_rowwise():
    a, b = _workload()
    for vec, row in (("spa", "spa-rowwise"), ("hash", "hash-rowwise")):
        t_vec = _best_of(lambda: dispatch_spgemm(a, b, PLUS_TIMES, vec), 5)
        t_row = _best_of(lambda: dispatch_spgemm(a, b, PLUS_TIMES, row), 2)
        assert t_row / t_vec >= BATCHED_MIN_SPEEDUP, (
            f"{vec} is only {t_row / t_vec:.1f}x faster than {row}"
        )
