"""Tests for the semiring abstraction."""

import numpy as np
import pytest

from repro.sparse import (
    BOOL_AND_OR,
    MAX_TIMES,
    MIN_PLUS,
    PLUS_TIMES,
    SEL2ND_MIN,
    Semiring,
    get_semiring,
)


class TestStandardSemirings:
    def test_plus_times(self):
        sr = PLUS_TIMES
        np.testing.assert_allclose(
            sr.multiply(np.array([2.0, 3.0]), np.array([4.0, 5.0])), [8.0, 15.0]
        )
        assert sr.zero == 0.0

    def test_bool_and_or(self):
        sr = BOOL_AND_OR
        out = sr.multiply(np.array([True, True, False]), np.array([True, False, True]))
        np.testing.assert_array_equal(out, [True, False, False])
        assert sr.zero is False
        assert sr.dtype == np.bool_

    def test_sel2nd_min_multiply_selects_second(self):
        sr = SEL2ND_MIN
        out = sr.multiply(np.array([9.0, 9.0]), np.array([1.0, 2.0]))
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_min_plus(self):
        sr = MIN_PLUS
        out = sr.multiply(np.array([1.0, 2.0]), np.array([10.0, 20.0]))
        np.testing.assert_allclose(out, [11.0, 22.0])
        assert sr.zero == np.inf

    def test_max_times(self):
        sr = MAX_TIMES
        assert sr.zero == 0.0
        out = sr.reduce_segments(np.array([0.5, 0.9, 0.2]), np.array([0]))
        np.testing.assert_allclose(out, [0.9])


class TestReduceSegments:
    def test_sum_segments(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        starts = np.array([0, 2, 3])
        np.testing.assert_allclose(
            PLUS_TIMES.reduce_segments(vals, starts), [3.0, 3.0, 9.0]
        )

    def test_or_segments(self):
        vals = np.array([True, False, False, False])
        starts = np.array([0, 2])
        np.testing.assert_array_equal(
            BOOL_AND_OR.reduce_segments(vals, starts), [True, False]
        )

    def test_min_segments(self):
        vals = np.array([3.0, 1.0, 7.0])
        np.testing.assert_allclose(
            SEL2ND_MIN.reduce_segments(vals, np.array([0])), [1.0]
        )

    def test_empty(self):
        out = PLUS_TIMES.reduce_segments(np.zeros(0), np.zeros(0, dtype=np.int64))
        assert len(out) == 0

    def test_singleton_segments(self):
        vals = np.array([1.0, 2.0, 3.0])
        starts = np.array([0, 1, 2])
        np.testing.assert_allclose(PLUS_TIMES.reduce_segments(vals, starts), vals)


class TestSemiringContract:
    def test_add_must_be_ufunc(self):
        with pytest.raises(TypeError, match="ufunc"):
            Semiring("bad", lambda a, b: a + b, np.multiply, 0.0, np.dtype(float))

    def test_scalar_add(self):
        assert PLUS_TIMES.scalar_add(2.0, 3.0) == 5.0
        assert BOOL_AND_OR.scalar_add(False, True) == True  # noqa: E712

    def test_coerce_casts_dtype(self):
        out = BOOL_AND_OR.coerce(np.array([0.0, 2.0]))
        assert out.dtype == np.bool_
        np.testing.assert_array_equal(out, [False, True])

    def test_registry_lookup(self):
        assert get_semiring("plus_times") is PLUS_TIMES
        assert get_semiring("bool_and_or") is BOOL_AND_OR
        with pytest.raises(KeyError):
            get_semiring("plus_plus")

    def test_repr(self):
        assert "plus_times" in repr(PLUS_TIMES)
