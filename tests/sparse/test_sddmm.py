"""Tests for the SDDMM and fused SDDMM→SpMM kernels."""

import numpy as np
import pytest

from repro.sparse import CsrMatrix, fused_sddmm_spmm, sddmm, spgemm
from ..conftest import csr_from_dense, random_dense


class TestSddmm:
    def test_matches_dense_reference(self, rng):
        pattern = csr_from_dense(random_dense(rng, 8, 6, 0.4))
        x = rng.random((8, 5))
        y = rng.random((6, 5))
        out = sddmm(pattern, x, y)
        full = x @ y.T
        mask = pattern.to_dense() != 0
        np.testing.assert_allclose(out.to_dense(), np.where(mask, full, 0.0))

    def test_preserves_structure(self, rng):
        pattern = csr_from_dense(random_dense(rng, 10, 10, 0.3))
        out = sddmm(pattern, rng.random((10, 4)), rng.random((10, 4)))
        np.testing.assert_array_equal(out.indptr, pattern.indptr)
        np.testing.assert_array_equal(out.indices, pattern.indices)

    def test_scale_by_values(self, rng):
        pattern = csr_from_dense(random_dense(rng, 6, 6, 0.5))
        x = rng.random((6, 3))
        y = rng.random((6, 3))
        scaled = sddmm(pattern, x, y, scale_by_values=True)
        plain = sddmm(pattern, x, y)
        np.testing.assert_allclose(scaled.data, plain.data * pattern.data)

    def test_empty_pattern(self):
        out = sddmm(CsrMatrix.empty((3, 4)), np.zeros((3, 2)), np.zeros((4, 2)))
        assert out.nnz == 0

    def test_rectangular(self, rng):
        pattern = csr_from_dense(random_dense(rng, 4, 9, 0.4))
        out = sddmm(pattern, rng.random((4, 3)), rng.random((9, 3)))
        assert out.shape == (4, 9)

    def test_shape_validation(self, rng):
        pattern = csr_from_dense(random_dense(rng, 4, 4, 0.5))
        with pytest.raises(ValueError, match="x must be"):
            sddmm(pattern, np.zeros((5, 2)), np.zeros((4, 2)))
        with pytest.raises(ValueError, match="y must be"):
            sddmm(pattern, np.zeros((4, 2)), np.zeros((5, 2)))
        with pytest.raises(ValueError, match="inner dimension"):
            sddmm(pattern, np.zeros((4, 2)), np.zeros((4, 3)))


class TestFused:
    def test_identity_map_matches_composition(self, rng):
        pattern = csr_from_dense(random_dense(rng, 8, 8, 0.3))
        x = rng.random((8, 4))
        y = rng.random((8, 4))
        z = csr_from_dense(random_dense(rng, 8, 5, 0.4))
        fused, _ = fused_sddmm_spmm(pattern, x, y, z, scale_by_values=False)
        coeffs = sddmm(pattern, x, y)
        expected, _ = spgemm(coeffs, z)
        assert fused.equal(expected)

    def test_elementwise_map_applied(self, rng):
        pattern = csr_from_dense(random_dense(rng, 6, 6, 0.4))
        x = rng.random((6, 3))
        y = rng.random((6, 3))
        z = csr_from_dense(random_dense(rng, 6, 4, 0.5))
        fused, _ = fused_sddmm_spmm(
            pattern, x, y, z, elementwise=np.tanh, scale_by_values=False
        )
        coeffs = sddmm(pattern, x, y)
        tanned = CsrMatrix(
            coeffs.shape, coeffs.indptr, coeffs.indices, np.tanh(coeffs.data)
        )
        expected, _ = spgemm(tanned, z)
        assert fused.equal(expected)

    def test_flops_include_both_stages(self, rng):
        pattern = csr_from_dense(random_dense(rng, 6, 6, 0.5))
        x = rng.random((6, 4))
        z = csr_from_dense(random_dense(rng, 6, 3, 0.5))
        _, flops = fused_sddmm_spmm(pattern, x, x, z)
        from repro.sparse import spgemm_flops

        assert flops == spgemm_flops(pattern, z) + pattern.nnz * 4

    def test_bad_elementwise_shape_rejected(self, rng):
        pattern = csr_from_dense(random_dense(rng, 4, 4, 0.8))
        x = rng.random((4, 2))
        z = csr_from_dense(random_dense(rng, 4, 2, 0.5))
        with pytest.raises(ValueError, match="preserve shape"):
            fused_sddmm_spmm(pattern, x, x, z, elementwise=lambda v: v[:1])
