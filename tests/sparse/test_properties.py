"""Property-based tests (hypothesis) for the sparse substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    BOOL_AND_OR,
    PLUS_TIMES,
    CsrMatrix,
    TileGrid,
    block_owner,
    block_ranges,
    coo_to_csr,
    ewise_add,
    extract_col_range,
    extract_rows,
    merge_csrs,
    pattern_difference,
    row_topk,
    spgemm,
    transpose,
)


@st.composite
def dense_matrices(draw, max_dim=12, dtype="float"):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    if dtype == "bool":
        elems = st.booleans()
    else:
        elems = st.sampled_from([0, 0, 0, 1, 2, -3, 5])  # integers avoid fp noise
    flat = draw(
        st.lists(elems, min_size=nrows * ncols, max_size=nrows * ncols)
    )
    arr = np.array(flat).reshape(nrows, ncols)
    return arr.astype(bool) if dtype == "bool" else arr.astype(np.float64)


@st.composite
def matmul_pairs(draw, max_dim=10):
    n = draw(st.integers(1, max_dim))
    k = draw(st.integers(1, max_dim))
    d = draw(st.integers(1, 6))
    elems = st.sampled_from([0, 0, 0, 1, 2, -1])
    a = np.array(
        draw(st.lists(elems, min_size=n * k, max_size=n * k))
    ).reshape(n, k).astype(np.float64)
    b = np.array(
        draw(st.lists(elems, min_size=k * d, max_size=k * d))
    ).reshape(k, d).astype(np.float64)
    return a, b


class TestCsrInvariants:
    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_dense_roundtrip_exact(self, dense):
        mat = CsrMatrix.from_dense(dense)
        CsrMatrix(mat.shape, mat.indptr, mat.indices, mat.data, check=True)
        np.testing.assert_array_equal(mat.to_dense(), dense)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, dense):
        mat = CsrMatrix.from_dense(dense)
        assert transpose(transpose(mat)).equal(mat)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_nnz_conserved_by_transpose(self, dense):
        mat = CsrMatrix.from_dense(dense)
        assert transpose(mat).nnz == mat.nnz


class TestSpgemmEquivalence:
    @given(matmul_pairs())
    @settings(max_examples=50, deadline=None)
    def test_esc_matches_numpy_product(self, pair):
        a, b = pair
        c, _ = spgemm(
            CsrMatrix.from_dense(a), CsrMatrix.from_dense(b), PLUS_TIMES, method="esc"
        )
        np.testing.assert_allclose(c.to_dense(), a @ b)

    @given(matmul_pairs())
    @settings(max_examples=30, deadline=None)
    def test_spa_hash_esc_agree(self, pair):
        a, b = pair
        ca = CsrMatrix.from_dense(a)
        cb = CsrMatrix.from_dense(b)
        results = [
            spgemm(ca, cb, PLUS_TIMES, method=m)[0] for m in ("esc", "spa", "hash")
        ]
        assert results[0].equal(results[1])
        assert results[0].equal(results[2])

    @given(matmul_pairs())
    @settings(max_examples=30, deadline=None)
    def test_flops_identical_across_methods(self, pair):
        a, b = pair
        ca = CsrMatrix.from_dense(a)
        cb = CsrMatrix.from_dense(b)
        flops = {spgemm(ca, cb, PLUS_TIMES, method=m)[1] for m in ("esc", "spa", "hash")}
        assert len(flops) == 1

    @given(dense_matrices(max_dim=8, dtype="bool"), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_bool_product_matches_reachability(self, adj, d):
        # (A F) over (∧,∨) equals boolean matmul
        rng = np.random.default_rng(0)
        f = rng.random((adj.shape[1], d)) < 0.4
        c, _ = spgemm(
            CsrMatrix.from_dense(adj), CsrMatrix.from_dense(f), BOOL_AND_OR
        )
        expected = (adj.astype(int) @ f.astype(int)) > 0
        got = np.zeros(c.shape, dtype=bool)
        got[c.row_ids(), c.indices] = c.data
        np.testing.assert_array_equal(got, expected)


class TestSetOpsProperties:
    @given(dense_matrices(dtype="bool"), st.randoms())
    @settings(max_examples=40, deadline=None)
    def test_difference_then_union_restores_superset(self, dense, rnd):
        full = CsrMatrix.from_dense(dense)
        # random sub-pattern of `full`
        mask = np.array([rnd.random() < 0.5 for _ in range(full.nnz)], dtype=bool)
        csum = np.concatenate([[0], np.cumsum(mask)])
        sub = CsrMatrix(
            full.shape,
            csum[full.indptr],
            full.indices[mask],
            full.data[mask],
            check=False,
        )
        diff = pattern_difference(full, sub)
        assert diff.nnz == full.nnz - sub.nnz
        union = ewise_add(diff, sub, BOOL_AND_OR)
        assert union.nnz == full.nnz

    @given(dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_difference_with_self_is_empty(self, dense):
        mat = CsrMatrix.from_dense(dense)
        assert pattern_difference(mat, mat).nnz == 0

    @given(dense_matrices(), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_row_topk_bounds_and_subset(self, dense, k):
        mat = CsrMatrix.from_dense(dense)
        out = row_topk(mat, k)
        assert (out.row_nnz() <= k).all()
        # output pattern is a subset of input pattern
        assert pattern_difference(out, mat).nnz == 0


class TestMergeProperties:
    @given(st.lists(dense_matrices(max_dim=6), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_merge_equals_dense_sum(self, denses):
        shape = (6, 6)
        padded = []
        for d in denses:
            out = np.zeros(shape)
            out[: d.shape[0], : d.shape[1]] = d
            padded.append(out)
        parts = [CsrMatrix.from_dense(p) for p in padded]
        merged = merge_csrs(parts, PLUS_TIMES)
        np.testing.assert_allclose(merged.to_dense(), sum(padded))

    @given(st.lists(dense_matrices(max_dim=5), min_size=2, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_merge_order_invariant(self, denses):
        shape = (5, 5)
        parts = []
        for d in denses:
            out = np.zeros(shape)
            out[: d.shape[0], : d.shape[1]] = d
            parts.append(CsrMatrix.from_dense(out))
        assert merge_csrs(parts).equal(merge_csrs(list(reversed(parts))))


class TestPartitionProperties:
    @given(st.integers(1, 500), st.integers(1, 64))
    @settings(max_examples=80, deadline=None)
    def test_block_ranges_partition(self, n, p):
        ranges = block_ranges(n, p)
        assert len(ranges) == p
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1
        for (_, a1), (b0, _) in zip(ranges, ranges[1:]):
            assert a1 == b0

    @given(st.integers(1, 300), st.integers(1, 32), st.data())
    @settings(max_examples=60, deadline=None)
    def test_block_owner_within_range(self, n, p, data):
        i = data.draw(st.integers(0, n - 1))
        owner = block_owner(i, n, p)
        lo, hi = block_ranges(n, p)[owner]
        assert lo <= i < hi


class TestTilingProperties:
    @given(dense_matrices(max_dim=15), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_tiles_cover_all_nnz(self, dense, h, w):
        mat = CsrMatrix.from_dense(dense)
        grid = TileGrid(mat, h, w)
        assert grid.tile_nnz().sum() == mat.nnz

    @given(dense_matrices(max_dim=12), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_col_strips_nnz_preserved(self, dense, p):
        mat = CsrMatrix.from_dense(dense)
        ranges = block_ranges(mat.ncols, p)
        total = sum(
            extract_col_range(mat, c0, c1).nnz for c0, c1 in ranges
        )
        assert total == mat.nnz

    @given(dense_matrices(max_dim=10), st.data())
    @settings(max_examples=40, deadline=None)
    def test_extract_rows_preserves_rows(self, dense, data):
        mat = CsrMatrix.from_dense(dense)
        ids = data.draw(
            st.lists(st.integers(0, mat.nrows - 1), min_size=0, max_size=8)
        )
        sel = extract_rows(mat, np.array(ids, dtype=np.int64))
        np.testing.assert_array_equal(sel.to_dense(), dense[ids])
