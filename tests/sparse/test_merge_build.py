"""Tests for COO builders and partial-result merging."""

import numpy as np
import pytest

from repro.sparse import (
    BOOL_AND_OR,
    PLUS_TIMES,
    SEL2ND_MIN,
    CsrMatrix,
    coo_to_csr,
    from_edges,
    merge_bytes,
    merge_csrs,
    random_csr,
)
from ..conftest import csr_from_dense, random_dense


class TestCooToCsr:
    def test_basic(self):
        m = coo_to_csr([0, 1, 0], [1, 0, 0], [1.0, 2.0, 3.0], (2, 2))
        np.testing.assert_allclose(m.to_dense(), [[3, 1], [2, 0]])

    def test_duplicates_sum(self):
        m = coo_to_csr([0, 0, 0], [1, 1, 1], [1.0, 2.0, 3.0], (1, 2))
        assert m.nnz == 1
        assert m.data[0] == 6.0

    def test_duplicates_or(self):
        m = coo_to_csr([0, 0], [0, 0], [True, False], (1, 1), BOOL_AND_OR)
        assert bool(m.data[0]) is True

    def test_duplicates_min(self):
        m = coo_to_csr([0, 0], [0, 0], [5.0, 2.0], (1, 1), SEL2ND_MIN)
        assert m.data[0] == 2.0

    def test_unsorted_input(self, rng):
        n = 20
        rows = rng.integers(0, n, 100)
        cols = rng.integers(0, n, 100)
        vals = rng.random(100)
        m = coo_to_csr(rows, cols, vals, (n, n))
        dense = np.zeros((n, n))
        np.add.at(dense, (rows, cols), vals)
        np.testing.assert_allclose(m.to_dense(), dense)

    def test_assume_sorted_fast_path(self):
        rows = np.array([0, 0, 1])
        cols = np.array([0, 2, 1])
        m = coo_to_csr(rows, cols, [1.0, 2.0, 3.0], (2, 3), assume_sorted=True)
        np.testing.assert_allclose(m.to_dense(), [[1, 0, 2], [0, 3, 0]])

    def test_empty(self):
        m = coo_to_csr([], [], [], (3, 4))
        assert m.nnz == 0 and m.shape == (3, 4)

    def test_bounds_checked(self):
        with pytest.raises(ValueError, match="row index"):
            coo_to_csr([5], [0], [1.0], (2, 2))
        with pytest.raises(ValueError, match="column index"):
            coo_to_csr([0], [5], [1.0], (2, 2))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            coo_to_csr([0, 1], [0], [1.0], (2, 2))

    def test_validates_against_reference(self, rng):
        m = coo_to_csr(
            rng.integers(0, 5, 30), rng.integers(0, 7, 30), rng.random(30), (5, 7)
        )
        CsrMatrix(m.shape, m.indptr, m.indices, m.data, check=True)


class TestFromEdges:
    def test_directed(self):
        m = from_edges([0, 1], [1, 2], 3)
        np.testing.assert_allclose(
            m.to_dense(), [[0, 1, 0], [0, 0, 1], [0, 0, 0]]
        )

    def test_symmetric_mirrors(self):
        m = from_edges([0], [1], 2, symmetric=True)
        np.testing.assert_allclose(m.to_dense(), [[0, 1], [1, 0]])

    def test_duplicate_edges_collapse(self):
        m = from_edges([0, 0], [1, 1], 2)
        assert m.nnz == 1
        assert m.data[0] == 1.0


class TestRandomCsr:
    def test_shape_and_density(self, rng):
        m = random_csr(200, 50, nnz_per_row=10, rng=rng)
        assert m.shape == (200, 50)
        avg = m.nnz / 200
        assert 8 < avg < 12  # binomial concentration

    def test_bool_dtype(self, rng):
        m = random_csr(10, 10, nnz_per_row=3, rng=rng, dtype=np.bool_)
        assert m.dtype == np.bool_

    def test_validates(self, rng):
        m = random_csr(50, 30, nnz_per_row=5, rng=rng)
        CsrMatrix(m.shape, m.indptr, m.indices, m.data, check=True)

    def test_density_clamped(self, rng):
        m = random_csr(10, 4, nnz_per_row=100, rng=rng)  # over-dense request
        assert m.nnz == 40  # fully dense


class TestMerge:
    def test_two_way_overlap(self):
        a = csr_from_dense([[1, 0], [2, 0]])
        b = csr_from_dense([[5, 1], [0, 0]])
        merged = merge_csrs([a, b], PLUS_TIMES)
        np.testing.assert_allclose(merged.to_dense(), [[6, 1], [2, 0]])

    def test_k_way_matches_dense_sum(self, rng):
        parts = [csr_from_dense(random_dense(rng, 6, 4, 0.3)) for _ in range(5)]
        merged = merge_csrs(parts, PLUS_TIMES)
        expected = sum(p.to_dense() for p in parts)
        np.testing.assert_allclose(merged.to_dense(), expected)

    def test_bool_union(self):
        a = csr_from_dense(np.array([[1, 0]], dtype=bool))
        b = csr_from_dense(np.array([[1, 1]], dtype=bool))
        merged = merge_csrs([a, b], BOOL_AND_OR)
        assert merged.nnz == 2

    def test_single_part_coerced(self):
        a = csr_from_dense([[1.5]])
        merged = merge_csrs([a], PLUS_TIMES)
        assert merged.equal(a)

    def test_none_parts_skipped(self):
        a = csr_from_dense([[1.0]])
        merged = merge_csrs([None, a, None], PLUS_TIMES)
        assert merged.equal(a)

    def test_no_parts_raises(self):
        with pytest.raises(ValueError):
            merge_csrs([], PLUS_TIMES)
        with pytest.raises(ValueError):
            merge_csrs([None], PLUS_TIMES)

    def test_all_empty_parts(self):
        parts = [CsrMatrix.empty((2, 2)) for _ in range(3)]
        merged = merge_csrs(parts, PLUS_TIMES)
        assert merged.nnz == 0 and merged.shape == (2, 2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            merge_csrs([CsrMatrix.empty((1, 2)), CsrMatrix.empty((2, 2))])

    def test_merge_bytes(self):
        a = csr_from_dense([[1.0, 2.0]])
        assert merge_bytes([a, None, a]) == 2 * a.nbytes_estimate()

    def test_merge_associativity(self, rng):
        parts = [csr_from_dense(random_dense(rng, 5, 5, 0.4)) for _ in range(4)]
        left = merge_csrs([merge_csrs(parts[:2]), merge_csrs(parts[2:])])
        flat = merge_csrs(parts)
        assert left.equal(flat)
