"""Tests for block partitioning helpers and tiling."""

import numpy as np
import pytest

from repro.sparse import (
    ColumnStrips,
    CsrMatrix,
    TileGrid,
    block_owner,
    block_owners,
    block_ranges,
)
from ..conftest import csr_from_dense, random_dense


class TestBlockRanges:
    def test_even_division(self):
        assert block_ranges(12, 4) == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_uneven_division_front_loaded(self):
        assert block_ranges(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_blocks_than_elements(self):
        ranges = block_ranges(2, 4)
        assert ranges == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_covers_exactly(self):
        for n, p in [(100, 7), (5, 5), (13, 3), (1, 1)]:
            ranges = block_ranges(n, p)
            assert ranges[0][0] == 0 and ranges[-1][1] == n
            for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
                assert a1 == b0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            block_ranges(10, 0)

    def test_owner_consistent_with_ranges(self):
        for n, p in [(10, 4), (100, 7), (16, 16), (5, 8)]:
            ranges = block_ranges(n, p)
            for i in range(n):
                owner = block_owner(i, n, p)
                lo, hi = ranges[owner]
                assert lo <= i < hi

    def test_vectorized_owners_match_scalar(self):
        n, p = 37, 5
        idx = np.arange(n)
        vec = block_owners(idx, n, p)
        scalar = np.array([block_owner(int(i), n, p) for i in idx])
        np.testing.assert_array_equal(vec, scalar)


class TestColumnStrips:
    def test_strips_partition_matrix(self, rng):
        dense = random_dense(rng, 6, 12, 0.4)
        mat = csr_from_dense(dense)
        ranges = block_ranges(12, 3)
        strips = ColumnStrips(mat, ranges)
        assert len(strips) == 3
        for j, (c0, c1) in enumerate(ranges):
            np.testing.assert_allclose(strips[j].to_dense(), dense[:, c0:c1])

    def test_strip_nnz_sums_to_total(self, rng):
        mat = csr_from_dense(random_dense(rng, 8, 20, 0.3))
        strips = ColumnStrips(mat, block_ranges(20, 4))
        assert strips.strip_nnz().sum() == mat.nnz


class TestTileGrid:
    def test_tiles_partition_exactly(self, rng):
        dense = random_dense(rng, 10, 15, 0.4)
        grid = TileGrid(csr_from_dense(dense), tile_height=4, tile_width=6)
        reassembled = np.zeros_like(dense)
        for tile in grid:
            r0, r1 = tile.row_range
            c0, c1 = tile.col_range
            reassembled[r0:r1, c0:c1] = tile.block.to_dense()
        np.testing.assert_allclose(reassembled, dense)

    def test_tile_counts(self):
        grid = TileGrid(CsrMatrix.empty((10, 15)), 4, 6)
        assert grid.n_row_tiles == 3  # ceil(10/4)
        assert grid.n_col_tiles == 3  # ceil(15/6)

    def test_oversized_tiles_clamped(self):
        grid = TileGrid(CsrMatrix.empty((4, 5)), 100, 100)
        assert grid.n_row_tiles == 1 and grid.n_col_tiles == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            TileGrid(CsrMatrix.empty((2, 2)), 0, 1)

    def test_tile_nnz_matches_extraction(self, rng):
        dense = random_dense(rng, 12, 16, 0.35)
        grid = TileGrid(csr_from_dense(dense), 5, 7)
        counts = grid.tile_nnz()
        assert counts.shape == (grid.n_row_tiles, grid.n_col_tiles)
        for tile in grid:
            assert counts[tile.row_tile, tile.col_tile] == tile.block.nnz
        assert counts.sum() == (dense != 0).sum()

    def test_tile_width_one(self, rng):
        dense = random_dense(rng, 4, 6, 0.5)
        grid = TileGrid(csr_from_dense(dense), 2, 1)
        assert grid.n_col_tiles == 6
        tile = grid.tile(0, 3)
        np.testing.assert_allclose(tile.block.to_dense(), dense[0:2, 3:4])
