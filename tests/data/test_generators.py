"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    bfs_frontier,
    erdos_renyi,
    get_dataset,
    load,
    planted_partition,
    random_sources,
    rmat,
    tall_skinny,
)
from repro.sparse import CsrMatrix


class TestErdosRenyi:
    def test_shape_and_degree(self):
        g = erdos_renyi(500, 8, seed=1)
        assert g.shape == (500, 500)
        avg = g.nnz / 500
        assert 6 < avg < 10

    def test_symmetric(self):
        g = erdos_renyi(100, 6, seed=2)
        from repro.sparse import transpose

        assert transpose(g).equal(g)

    def test_no_self_loops(self):
        g = erdos_renyi(100, 6, seed=3)
        rows = g.row_ids()
        assert not np.any(rows == g.indices)

    def test_deterministic(self):
        assert erdos_renyi(50, 4, seed=7).equal(erdos_renyi(50, 4, seed=7))
        assert not erdos_renyi(50, 4, seed=7).equal(erdos_renyi(50, 4, seed=8))

    def test_directed_variant(self):
        g = erdos_renyi(100, 6, seed=2, symmetric=False)
        from repro.sparse import transpose

        assert not transpose(g).equal(g)


class TestRmat:
    def test_shape_and_degree(self):
        g = rmat(512, 16, seed=1)
        assert g.shape == (512, 512)
        avg = g.nnz / 512
        assert 8 < avg < 20  # duplicate collapse reduces below target

    def test_skewed_degrees(self):
        """RMAT must produce a heavier tail than ER at equal avg degree."""
        n, k = 1024, 16
        g_rmat = rmat(n, k, seed=5)
        g_er = erdos_renyi(n, k, seed=5)
        assert g_rmat.row_nnz().max() > 2 * g_er.row_nnz().max()

    def test_no_self_loops(self):
        g = rmat(256, 8, seed=2)
        assert not np.any(g.row_ids() == g.indices)

    def test_symmetric(self):
        g = rmat(256, 8, seed=3)
        from repro.sparse import transpose

        assert transpose(g).equal(g)

    def test_deterministic(self):
        assert rmat(128, 8, seed=9).equal(rmat(128, 8, seed=9))

    def test_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat(64, 4, a=0.5, b=0.3, c=0.3)


class TestPlantedPartition:
    def test_returns_labels(self):
        adj, labels = planted_partition(200, 4, seed=1)
        assert adj.shape == (200, 200)
        assert len(labels) == 200
        assert set(np.unique(labels)) <= set(range(4))

    def test_intra_community_denser(self):
        adj, labels = planted_partition(300, 3, p_in=0.2, p_out=0.004, seed=2)
        rows = adj.row_ids()
        same = labels[rows] == labels[adj.indices]
        # most edges should be intra-community
        assert same.mean() > 0.7

    def test_symmetric(self):
        adj, _ = planted_partition(150, 3, seed=3)
        from repro.sparse import transpose

        assert transpose(adj).equal(adj)


class TestTallSkinny:
    @pytest.mark.parametrize("sparsity", [0.0, 0.5, 0.8, 0.99])
    def test_sparsity_honoured(self, sparsity):
        b = tall_skinny(2000, 100, sparsity, seed=1)
        density = b.nnz / (2000 * 100)
        assert density == pytest.approx(1 - sparsity, abs=0.02)

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            tall_skinny(10, 4, 1.5)

    def test_fully_sparse(self):
        assert tall_skinny(50, 8, 1.0).nnz == 0

    def test_deterministic(self):
        assert tall_skinny(100, 16, 0.8, seed=4).equal(
            tall_skinny(100, 16, 0.8, seed=4)
        )


class TestBfsFrontier:
    def test_one_nonzero_per_column(self):
        sources = np.array([5, 0, 9])
        f = bfs_frontier(10, sources)
        assert f.shape == (10, 3)
        assert f.nnz == 3
        dense = f.to_dense(zero=False)
        for j, s in enumerate(sources):
            assert dense[s, j]

    def test_bool_dtype(self):
        f = bfs_frontier(5, np.array([1]))
        assert f.dtype == np.bool_

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            bfs_frontier(5, np.array([7]))

    def test_random_sources_distinct(self):
        s = random_sources(100, 20, seed=1)
        assert len(np.unique(s)) == 20

    def test_random_sources_clamped(self):
        s = random_sources(5, 10, seed=1)
        assert len(s) == 5


class TestDatasets:
    def test_registry_has_all_table5_rows(self):
        expected = {"pubmed", "flicker", "cora", "citeseer", "arabic", "it", "gap", "uk", "ER"}
        assert set(DATASETS) == expected

    def test_paper_statistics_recorded(self):
        uk = get_dataset("uk")
        assert uk.paper_vertices == 18_520_486
        assert uk.avg_degree == pytest.approx(16.0)

    @pytest.mark.parametrize("alias", ["uk", "ER", "cora"])
    def test_generate(self, alias):
        g = load(alias, scale=0.1, seed=0)
        assert isinstance(g, CsrMatrix)
        assert g.nrows > 0 and g.nnz > 0

    def test_scale_changes_size(self):
        small = load("uk", scale=0.05)
        big = load("uk", scale=0.2)
        assert big.nrows > small.nrows

    def test_labels_for_planted(self):
        adj, labels = get_dataset("cora").generate_with_labels(scale=0.5)
        assert labels is not None and len(labels) == adj.nrows

    def test_no_labels_for_rmat(self):
        _, labels = get_dataset("uk").generate_with_labels(scale=0.05)
        assert labels is None

    def test_unknown_alias(self):
        with pytest.raises(KeyError):
            get_dataset("twitter")
