"""Regression tests for the order-stable, associative report merge.

The serving tier folds per-batch reports whose completion order depends
on thread scheduling; the fold must therefore be invariant under both
input permutation and fold-tree shape, and must never mutate its inputs.
"""

import copy
import itertools

import pytest

from repro.mpi.stats import (
    CollectiveEvent,
    PhaseStats,
    RankStats,
    SpmdReport,
    merge_reports,
)

SIZE = 2


def _report(seed: int, phase_order) -> SpmdReport:
    """A synthetic 2-rank report with phases inserted in ``phase_order``
    (dict insertion order is what a naive merge would leak)."""
    rank_stats = []
    for rank in range(SIZE):
        rs = RankStats(rank=rank)
        for k, name in enumerate(phase_order):
            st = rs.phase_stats(name)
            st.bytes_sent = 100 * seed + 10 * rank + k
            st.bytes_recv = 7 * seed + k
            st.messages_sent = seed + k
            st.collectives = k
            st.alltoall_rounds = k % 2
            st.comm_time = 0.5 * seed + 0.1 * k
            st.compute_time = 0.25 * seed
        rs.events.append(
            CollectiveEvent("barrier", f"site{seed}", phase_order[0], seed)
        )
        rs.events.append(
            CollectiveEvent("alltoall", f"site{seed}", phase_order[-1], seed)
        )
        rank_stats.append(rs)
    return SpmdReport(
        size=SIZE,
        rank_stats=rank_stats,
        clocks=[1.0 * seed + rank for rank in range(SIZE)],
        comm_times=[0.5 * seed] * SIZE,
        compute_times=[0.25 * seed] * SIZE,
    )


@pytest.fixture
def reports():
    # Deliberately different phase insertion orders per report.
    return [
        _report(1, ["fetch-B", "send-C", "symbolic"]),
        _report(2, ["symbolic", "fetch-B", "send-C"]),
        _report(3, ["send-C", "symbolic", "fetch-B"]),
    ]


def _flatten(report: SpmdReport):
    """Canonical comparable view of everything the merge produces."""
    return (
        report.size,
        tuple(report.clocks),
        tuple(report.comm_times),
        tuple(report.compute_times),
        tuple(
            (
                rs.rank,
                tuple(
                    (name, vars(stats).copy())
                    for name, stats in rs.phases.items()
                ),
                tuple(
                    (e.seq, e.kind, e.site, e.phase, e.payload)
                    for e in rs.events
                ),
            )
            for rs in report.rank_stats
        ),
    )


def _flatten_exact(report: SpmdReport):
    """Like ``_flatten`` but with only the integer counters, event
    traces and phase ordering — the fields the merge promises to keep
    bit-identical under any fold tree (float sums round once per merge)."""
    return (
        report.size,
        tuple(
            (
                rs.rank,
                tuple(
                    (
                        name,
                        stats.bytes_sent,
                        stats.bytes_recv,
                        stats.messages_sent,
                        stats.messages_recv,
                        stats.collectives,
                        stats.alltoall_rounds,
                    )
                    for name, stats in rs.phases.items()
                ),
                tuple(
                    (e.seq, e.kind, e.site, e.phase, e.payload)
                    for e in rs.events
                ),
            )
            for rs in report.rank_stats
        ),
    )


def test_merge_is_permutation_invariant(reports):
    # fsum makes even the float time sums bit-identical across input
    # permutations, so the whole report must match exactly.
    baseline = _flatten(merge_reports(reports))
    for perm in itertools.permutations(reports):
        assert _flatten(merge_reports(list(perm))) == baseline


def test_merge_is_associative(reports):
    a, b, c = reports
    flat = merge_reports([a, b, c])
    left = merge_reports([merge_reports([a, b]), c])
    right = merge_reports([a, merge_reports([b, c])])
    assert _flatten_exact(left) == _flatten_exact(flat)
    assert _flatten_exact(right) == _flatten_exact(flat)
    for folded in (left, right):
        assert folded.clocks == pytest.approx(flat.clocks)
        assert folded.comm_times == pytest.approx(flat.comm_times)
        assert folded.compute_times == pytest.approx(flat.compute_times)
        for rank in range(SIZE):
            for name, stats in flat.rank_stats[rank].phases.items():
                other = folded.rank_stats[rank].phases[name]
                assert other.comm_time == pytest.approx(stats.comm_time)
                assert other.compute_time == pytest.approx(
                    stats.compute_time
                )


def test_merge_does_not_mutate_inputs(reports):
    before = [copy.deepcopy(_flatten(r)) for r in reports]
    merge_reports(reports)
    after = [_flatten(r) for r in reports]
    assert before == after


def test_merged_counters_are_sums(reports):
    merged = merge_reports(reports)
    for rank in range(SIZE):
        for name in ("fetch-B", "send-C", "symbolic"):
            expected = PhaseStats()
            for r in reports:
                expected.merge(r.rank_stats[rank].phases[name])
            assert vars(merged.rank_stats[rank].phases[name]) == vars(
                expected
            )
    assert merged.clocks == [
        sum(r.clocks[i] for r in reports) for i in range(SIZE)
    ]


def test_events_sorted_by_total_key(reports):
    merged = merge_reports(reports)
    for rs in merged.rank_stats:
        keys = [(e.seq, e.kind, e.site, e.phase, e.payload) for e in rs.events]
        assert keys == sorted(keys)
        assert len(keys) == 2 * len(reports)


def test_phase_tables_in_sorted_name_order(reports):
    merged = merge_reports(reports)
    for rs in merged.rank_stats:
        assert list(rs.phases) == sorted(rs.phases)


def test_size_mismatch_rejected(reports):
    odd = SpmdReport(
        size=3,
        rank_stats=[RankStats(rank=i) for i in range(3)],
        clocks=[0.0] * 3,
        comm_times=[0.0] * 3,
        compute_times=[0.0] * 3,
    )
    with pytest.raises(ValueError):
        merge_reports([reports[0], odd])
    with pytest.raises(ValueError):
        merge_reports([])
