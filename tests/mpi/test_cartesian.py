"""Tests for communicator splitting and cartesian grids."""

import pytest

from repro.mpi import (
    CommMismatchError,
    RankError,
    layered_grid_dims,
    make_grid2d,
    make_grid3d,
    run_spmd,
    square_grid_dims,
)


class TestSplit:
    def test_split_even_odd(self):
        def program(comm):
            sub = comm.split(color=comm.rank % 2)
            return (sub.rank, sub.size, sub.global_rank)

        values = run_spmd(6, program).values
        # evens: ranks 0,2,4 -> sub ranks 0,1,2 ; odds: 1,3,5
        assert values[0] == (0, 3, 0)
        assert values[2] == (1, 3, 2)
        assert values[5] == (2, 3, 5)

    def test_split_with_key_reorders(self):
        def program(comm):
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        values = run_spmd(4, program).values
        assert values == [3, 2, 1, 0]

    def test_split_none_opts_out(self):
        def program(comm):
            sub = comm.split(color=None if comm.rank == 0 else 1)
            return None if sub is None else sub.size

        values = run_spmd(3, program).values
        assert values == [None, 2, 2]

    def test_subcommunicator_collectives_are_isolated(self):
        def program(comm):
            sub = comm.split(color=comm.rank % 2)
            return sub.allreduce(comm.rank)

        values = run_spmd(6, program).values
        assert values[0] == values[2] == values[4] == 0 + 2 + 4
        assert values[1] == values[3] == values[5] == 1 + 3 + 5

    def test_subcommunicator_p2p(self):
        def program(comm):
            sub = comm.split(color=comm.rank // 2)  # pairs
            if sub.rank == 0:
                sub.send(comm.rank, dest=1)
                return None
            return sub.recv(source=0)

        values = run_spmd(4, program).values
        assert values[1] == 0 and values[3] == 2

    def test_nested_splits(self):
        def program(comm):
            half = comm.split(color=comm.rank // 4)
            quarter = half.split(color=half.rank // 2)
            return quarter.allreduce(comm.rank)

        values = run_spmd(8, program).values
        assert values[0] == values[1] == 0 + 1
        assert values[6] == values[7] == 6 + 7

    def test_repeated_splits_at_same_site(self):
        def program(comm):
            total = 0
            for it in range(3):
                sub = comm.split(color=(comm.rank + it) % 2)
                total += sub.allreduce(1)
            return total

        values = run_spmd(4, program).values
        assert values == [6, 6, 6, 6]


class TestGridDims:
    def test_square_grid_perfect_squares(self):
        assert square_grid_dims(16) == (4, 4)
        assert square_grid_dims(1) == (1, 1)

    def test_square_grid_rectangles(self):
        assert square_grid_dims(12) == (3, 4)
        assert square_grid_dims(8) == (2, 4)

    def test_square_grid_primes_degrade_to_1d(self):
        assert square_grid_dims(7) == (1, 7)

    def test_layered_dims_divides(self):
        pr, pc, l = layered_grid_dims(16, 4)
        assert pr * pc * l == 16 and l == 4

    def test_layered_dims_falls_back(self):
        pr, pc, l = layered_grid_dims(6, 4)
        assert pr * pc * l == 6 and l == 3


class TestGrid2D:
    def test_coordinates_row_major(self):
        def program(comm):
            g = make_grid2d(comm, 2, 3)
            return (g.row, g.col)

        values = run_spmd(6, program).values
        assert values == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_row_and_col_comm_sizes(self):
        def program(comm):
            g = make_grid2d(comm, 2, 3)
            return (g.row_comm.size, g.col_comm.size)

        assert run_spmd(6, program).values == [(3, 2)] * 6

    def test_row_bcast_stays_in_row(self):
        def program(comm):
            g = make_grid2d(comm, 2, 2)
            return g.row_comm.bcast(g.row * 100 if g.col == 0 else None, root=0)

        values = run_spmd(4, program).values
        assert values == [0, 0, 100, 100]

    def test_bad_dims_raise(self):
        def program(comm):
            make_grid2d(comm, 2, 2)

        with pytest.raises(RankError) as exc_info:
            run_spmd(6, program)
        assert isinstance(exc_info.value.original, CommMismatchError)

    def test_auto_dims(self):
        def program(comm):
            g = make_grid2d(comm)
            return (g.pr, g.pc)

        assert run_spmd(4, program).values == [(2, 2)] * 4


class TestGrid3D:
    def test_fiber_spans_layers(self):
        def program(comm):
            g = make_grid3d(comm, layers=2)
            return (g.layers, g.fiber_comm.size, g.layer)

        values = run_spmd(8, program).values
        assert all(v[0] == 2 and v[1] == 2 for v in values)
        assert sorted(v[2] for v in values) == [0] * 4 + [1] * 4

    def test_layer_face_collectives_isolated(self):
        def program(comm):
            g = make_grid3d(comm, layers=2)
            # row comm within one layer's face
            return g.row_comm.allreduce(g.layer)

        values = run_spmd(8, program).values
        # every member of a layer-0 row sums zeros; layer-1 rows sum twos
        assert sorted(values) == [0, 0, 0, 0, 2, 2, 2, 2]

    def test_fiber_reduce_merges_partials(self):
        def program(comm):
            g = make_grid3d(comm, layers=2)
            return g.fiber_comm.allreduce(g.layer + 1)

        assert run_spmd(8, program).values == [3] * 8
