"""Tests for the α–β cost model, virtual clocks and statistics."""

import numpy as np
import pytest

from repro.mpi import (
    ETHERNET_CLUSTER,
    PERLMUTTER,
    MachineProfile,
    VirtualClock,
    get_profile,
    payload_nbytes,
    run_spmd,
)


class TestMachineProfile:
    def test_p2p_cost_is_alpha_plus_beta(self):
        m = MachineProfile(alpha=1e-6, beta=1e-9)
        assert m.p2p(1000) == pytest.approx(1e-6 + 1e-6)

    def test_barrier_scales_logarithmically(self):
        m = PERLMUTTER
        assert m.barrier(1) == 0.0
        assert m.barrier(2) == pytest.approx(m.alpha)
        assert m.barrier(8) == pytest.approx(3 * m.alpha)
        assert m.barrier(9) == pytest.approx(4 * m.alpha)

    def test_alltoallv_overlapped_exchange(self):
        m = MachineProfile(alpha=1e-6, gamma=1e-7, beta=1e-9)
        # alpha + (q-1) gamma + beta * max(sent, recv)
        assert m.alltoallv(5, 2000, 1000) == pytest.approx(1e-6 + 4e-7 + 2e-6)
        assert m.alltoallv(5, 1000, 3000) == pytest.approx(1e-6 + 4e-7 + 3e-6)
        assert m.alltoallv(1, 100, 100) == 0.0

    def test_allreduce_is_twice_reduce(self):
        m = PERLMUTTER
        assert m.allreduce(8, 100) == pytest.approx(2 * m.reduce(8, 100))

    def test_spa_spill_penalty_applies_beyond_cache(self):
        m = PERLMUTTER
        small = m.spgemm_time(1000, d=128, accumulator="spa")
        large = m.spgemm_time(1000, d=4096, accumulator="spa")
        assert large == pytest.approx(small * m.spa_spill_penalty)

    def test_hash_slower_than_cached_spa(self):
        m = PERLMUTTER
        spa = m.spgemm_time(1000, d=128, accumulator="spa")
        hsh = m.spgemm_time(1000, d=128, accumulator="hash")
        assert hsh > spa

    def test_hash_beats_spilled_spa(self):
        # This inequality is the paper's rationale for switching to hash
        # accumulation at d > 1024 (§III-C).
        m = PERLMUTTER
        spa = m.spgemm_time(1000, d=16384, accumulator="spa")
        hsh = m.spgemm_time(1000, d=16384, accumulator="hash")
        assert hsh < spa

    def test_spmm_flops_cheaper_than_spgemm_flops(self):
        m = PERLMUTTER
        assert m.spmm_time(1000) < m.spgemm_time(1000, d=128)

    def test_unknown_accumulator_rejected(self):
        with pytest.raises(ValueError):
            PERLMUTTER.spgemm_time(10, d=4, accumulator="btree")

    def test_zero_and_negative_flops_cost_nothing(self):
        assert PERLMUTTER.spgemm_time(0, d=4) == 0.0
        assert PERLMUTTER.spmm_time(-5) == 0.0

    def test_profiles_registry(self):
        assert get_profile("perlmutter-cpu") is PERLMUTTER
        assert get_profile("ethernet-cluster") is ETHERNET_CLUSTER
        with pytest.raises(KeyError):
            get_profile("cray-xt5")

    def test_with_overrides(self):
        faster = PERLMUTTER.with_overrides(beta=PERLMUTTER.beta / 2)
        assert faster.alpha == PERLMUTTER.alpha
        assert faster.beta == PERLMUTTER.beta / 2


class TestVirtualClock:
    def test_advance_and_decompose(self):
        c = VirtualClock()
        c.advance_compute(1.0)
        c.advance_comm(0.5)
        assert c.now == pytest.approx(1.5)
        assert c.compute_time == pytest.approx(1.0)
        assert c.comm_time == pytest.approx(0.5)

    def test_sync_to_only_moves_forward(self):
        c = VirtualClock()
        c.advance_compute(2.0)
        c.sync_to(1.0)  # in the past: no-op
        assert c.now == pytest.approx(2.0)
        c.sync_to(3.0)
        assert c.now == pytest.approx(3.0)
        assert c.comm_time == pytest.approx(1.0)

    def test_negative_rejected(self):
        c = VirtualClock()
        with pytest.raises(ValueError):
            c.advance_compute(-1)
        with pytest.raises(ValueError):
            c.advance_comm(-1)


class TestPayloadNbytes:
    def test_none_is_free(self):
        assert payload_nbytes(None) == 0

    def test_numpy_array(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
        assert payload_nbytes(np.zeros(10, dtype=np.int32)) == 40

    def test_scalars(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(True) == 8
        assert payload_nbytes(np.float64(1.0)) == 8

    def test_containers_recursive(self):
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40
        assert payload_nbytes({"a": 1, "b": np.zeros(1)}) == 1 + 8 + 1 + 8

    def test_strings_and_bytes(self):
        assert payload_nbytes("abc") == 3
        assert payload_nbytes(b"abcd") == 4

    def test_nbytes_estimate_protocol(self):
        class Fake:
            def nbytes_estimate(self):
                return 1234

        assert payload_nbytes(Fake()) == 1234


class TestRunReports:
    def test_collective_synchronizes_clocks(self):
        """A straggler's compute time must delay everyone's exit."""

        def program(comm):
            if comm.rank == 0:
                comm.charge_seconds(1.0)
            comm.barrier()
            return comm.time

        values = run_spmd(4, program).values
        assert all(t >= 1.0 for t in values)

    def test_report_runtime_is_max_clock(self):
        def program(comm):
            comm.charge_seconds(0.1 * (comm.rank + 1))

        report = run_spmd(3, program).report
        assert report.runtime == pytest.approx(0.3)
        assert report.compute_time == pytest.approx(0.3)

    def test_alltoall_byte_accounting(self):
        nbytes = 800  # 100 float64 per destination

        def program(comm):
            send = [np.zeros(100) for _ in range(comm.size)]
            comm.alltoall(send)

        report = run_spmd(4, program).report
        # each rank sends to 3 others
        assert report.total_bytes() == 4 * 3 * nbytes

    def test_phase_labelling(self):
        def program(comm):
            with comm.phase("fetch-B"):
                comm.alltoall([np.zeros(10) for _ in range(comm.size)])
            with comm.phase("send-C"):
                comm.alltoall([np.zeros(20) for _ in range(comm.size)])

        report = run_spmd(2, program).report
        per_phase = report.phase_bytes()
        assert per_phase["fetch-B"] == 2 * 1 * 80
        assert per_phase["send-C"] == 2 * 1 * 160

    def test_comm_plus_compute_decomposition(self):
        def program(comm):
            comm.charge_seconds(0.5)
            comm.allreduce(np.zeros(1000))

        report = run_spmd(2, program).report
        assert report.compute_time == pytest.approx(0.5)
        assert report.comm_time > 0
        assert report.runtime == pytest.approx(
            report.compute_time + report.comm_time, rel=1e-6
        )

    def test_machine_profile_changes_modelled_time(self):
        def program(comm):
            comm.alltoall([np.zeros(10000) for _ in range(comm.size)])

        fast = run_spmd(4, program, machine=PERLMUTTER).report.runtime
        slow = run_spmd(4, program, machine=ETHERNET_CLUSTER).report.runtime
        assert slow > fast

    def test_max_rank_bytes_recv(self):
        def program(comm):
            if comm.rank == 0:
                send = [np.zeros(1000) for _ in range(comm.size)]
            else:
                send = [None for _ in range(comm.size)]
            comm.alltoall(send)

        report = run_spmd(3, program).report
        assert report.max_rank_bytes_recv() == 8000  # nonzero ranks get 8 KB
