"""Failure injection: the runtime must unwind cleanly from bad programs."""

import threading

import numpy as np
import pytest

from repro.mpi import (
    CommMismatchError,
    DeadlockError,
    RankError,
    SpmdAbort,
    run_spmd,
)


class TestAbortPropagation:
    def test_failure_inside_subcommunicator_collective(self):
        def program(comm):
            sub = comm.split(color=comm.rank % 2)
            if comm.rank == 1:
                raise RuntimeError("dies before the collective")
            sub.allreduce(1)  # peers blocked in the child communicator

        with pytest.raises(RankError) as exc_info:
            run_spmd(4, program, timeout=30.0)
        assert exc_info.value.rank == 1

    def test_failure_after_many_successful_collectives(self):
        def program(comm):
            for i in range(20):
                comm.allreduce(i)
            if comm.rank == 0:
                raise ValueError("late failure")
            comm.barrier()

        with pytest.raises(RankError):
            run_spmd(3, program, timeout=30.0)

    def test_all_ranks_fail_first_reported(self):
        def program(comm):
            raise RuntimeError(f"rank {comm.rank} failing")

        with pytest.raises(RankError) as exc_info:
            run_spmd(4, program)
        assert 0 <= exc_info.value.rank < 4

    def test_failure_with_pending_p2p_messages(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("orphaned", dest=1)
                raise RuntimeError("sender dies after send")
            # receiver may or may not get the message before abort; it
            # must not hang either way
            try:
                comm.recv(source=0)
                comm.recv(source=0)  # never sent
            except SpmdAbort:
                pass

        with pytest.raises(RankError):
            run_spmd(2, program, timeout=30.0)

    def test_nested_split_failure_releases_everyone(self):
        def program(comm):
            half = comm.split(color=comm.rank // 2)
            quarter = half.split(color=half.rank)
            if comm.rank == 3:
                raise RuntimeError("deep failure")
            comm.barrier()

        with pytest.raises(RankError) as exc_info:
            run_spmd(4, program, timeout=30.0)
        assert exc_info.value.rank == 3


class TestMisuseDetection:
    def test_mismatched_collective_types_detected_or_mismatch(self):
        """Ranks disagreeing on the collective *kind* is user error; the
        runtime raises rather than silently exchanging garbage (here the
        payload tuples differ in arity, caught by the root check)."""

        def program(comm):
            if comm.rank == 0:
                comm.bcast("x", root=0)
            else:
                comm.bcast("x", root=1)  # inconsistent root

        with pytest.raises(RankError) as exc_info:
            run_spmd(2, program)
        assert isinstance(exc_info.value.original, CommMismatchError)

    def test_negative_root_rejected(self):
        with pytest.raises(RankError):
            run_spmd(2, lambda comm: comm.bcast(1, root=-1))

    def test_deadlock_reports_blocked_threads(self):
        def program(comm):
            comm.recv(source=(comm.rank + 1) % comm.size)  # circular wait

        with pytest.raises(DeadlockError) as exc_info:
            run_spmd(2, program, timeout=1.0)
        assert "blocked" in str(exc_info.value)

    def test_recv_from_invalid_source(self):
        with pytest.raises(RankError):
            run_spmd(2, lambda comm: comm.recv(source=9))


class TestRecoveryAcrossRuns:
    def test_runtime_usable_after_failed_run(self):
        """A failed run must not poison subsequent runs (fresh state)."""

        def bad(comm):
            raise RuntimeError("boom")

        with pytest.raises(RankError):
            run_spmd(4, bad)
        result = run_spmd(4, lambda comm: comm.allreduce(comm.rank))
        assert result.values == [6] * 4

    def test_many_sequential_runs_no_thread_leak(self):
        before = threading.active_count()
        for _ in range(10):
            run_spmd(4, lambda comm: comm.barrier())
        assert threading.active_count() <= before + 1

    def test_failed_and_good_runs_interleaved(self):
        for i in range(5):
            if i % 2 == 0:
                with pytest.raises(RankError):
                    run_spmd(3, lambda comm: (_ for _ in ()).throw(ValueError()))
            else:
                assert run_spmd(3, lambda comm: comm.size).values == [3, 3, 3]
