"""Runtime collective-sanitizer tests (``REPRO_SANITIZE`` layer 2).

Each seeded bug is a live :func:`run_spmd`/:class:`SpmdSession` run; the
sanitizer must turn the would-be hang into a structured error naming the
diverging ranks and both call sites.
"""

import pytest

from repro.mpi import (
    ByteConservationError,
    CollectiveMismatchError,
    CollectiveStallError,
    DeadlockError,
    DeadSessionError,
    RankError,
    SanitizerError,
    SpmdDiagnosticError,
    SpmdSession,
    run_spmd,
)
from repro.mpi.sanitize import sanitize_enabled
from repro.mpi.stats import RankStats


# ----------------------------------------------------------------------
# the switch
# ----------------------------------------------------------------------
def test_sanitize_enabled_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not sanitize_enabled()
    assert sanitize_enabled(True)
    for value in ("1", "true", "YES", " on "):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize_enabled()
        assert sanitize_enabled(None)
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not sanitize_enabled()


# ----------------------------------------------------------------------
# seeded mismatches -> structured errors
# ----------------------------------------------------------------------
def test_mismatched_collective_kinds_name_both_call_sites():
    def program(comm):
        if comm.rank == 0:
            return comm.bcast("x", root=0)
        return comm.allreduce(1)

    with pytest.raises(CollectiveMismatchError) as exc_info:
        run_spmd(3, program, sanitize=True)
    err = exc_info.value
    message = str(err)
    assert "collective mismatch across ranks" in message
    assert "bcast" in message and "allreduce" in message
    assert "rank(s) [0]" in message and "rank(s) [1, 2]" in message
    # Structured fields: every diverging rank, one call site per group,
    # both pointing into this test file.
    assert sorted(err.ranks) == [0, 1, 2]
    assert len(err.call_sites) == 2
    assert all("test_sanitizer.py" in site for site in err.call_sites)
    # A cross-rank finding, not one rank's bug: never RankError-wrapped.
    assert isinstance(err, SanitizerError)
    assert isinstance(err, SpmdDiagnosticError)
    assert not isinstance(err, RankError)


def test_mismatched_phase_labels_are_detected():
    def program(comm):
        label = "fetch" if comm.rank == 0 else "merge"
        with comm.phase(label):
            return comm.allreduce(1)

    with pytest.raises(CollectiveMismatchError) as exc_info:
        run_spmd(2, program, sanitize=True)
    assert "'fetch'" in str(exc_info.value)
    assert "'merge'" in str(exc_info.value)


def test_mismatched_fused_meta_structure_is_detected():
    def program(comm):
        sections = [("fetch-B", [None] * comm.size)]
        meta = {"tiles": comm.size} if comm.rank == 0 else None
        with comm.phase("fused"):
            return comm.alltoall_fused(sections, meta=meta)

    with pytest.raises(CollectiveMismatchError) as exc_info:
        run_spmd(2, program, sanitize=True)
    message = str(exc_info.value)
    assert "meta:dict(tiles)" in message and "meta:none" in message


def test_consistent_program_is_untouched_by_the_sanitizer():
    def program(comm):
        with comm.phase("sync"):
            total = comm.allreduce(comm.rank)
        with comm.phase("ring"):
            comm.send(comm.rank, dest=(comm.rank + 1) % comm.size, tag=1)
            left = comm.recv(source=(comm.rank - 1) % comm.size, tag=1)
        return total, left

    plain = run_spmd(3, program, sanitize=False)
    checked = run_spmd(3, program, sanitize=True)
    assert plain.values == checked.values
    # Sanitizer traffic is never charged to the virtual clocks.
    assert checked.report.clocks == plain.report.clocks


def test_sanitizer_records_collective_events():
    def program(comm):
        with comm.phase("sync"):
            comm.allreduce(1)
        comm.barrier()

    result = run_spmd(2, program, sanitize=True)
    for rs in result.report.rank_stats:
        kinds = [e.kind for e in rs.events]
        assert kinds == ["allreduce", "barrier"]
        assert [e.seq for e in rs.events] == [0, 1]
        assert rs.events[0].phase == "sync"
        assert all("test_sanitizer.py" in e.site for e in rs.events)


# ----------------------------------------------------------------------
# stalls: a collective a finished rank can never join
# ----------------------------------------------------------------------
def test_collective_after_peer_returned_is_a_stall_not_a_hang():
    def program(comm):
        if comm.rank == 0:
            return "done early"
        comm.barrier()

    with pytest.raises(CollectiveStallError) as exc_info:
        run_spmd(3, program, sanitize=True)
    message = str(exc_info.value)
    assert "cannot complete" in message
    assert "barrier" in message
    assert "already finished the task" in message
    assert 0 in [int(r) for r in exc_info.value.ranks] or "[0]" in message


def test_watchdog_reports_last_collective_of_stuck_ranks():
    def program(comm):
        comm.barrier()
        if comm.rank == 0:
            comm.recv(source=1, tag=5)  # never sent: genuine hang

    with pytest.raises(DeadlockError) as exc_info:
        run_spmd(2, program, timeout=1.0, sanitize=True)
    message = str(exc_info.value)
    assert "spmd-rank-0" in message
    assert "rank 0 last issued barrier" in message
    assert "test_sanitizer.py" in message


# ----------------------------------------------------------------------
# byte conservation at task end
# ----------------------------------------------------------------------
def test_phase_lopsided_p2p_fails_byte_conservation():
    def program(comm):
        if comm.rank == 0:
            with comm.phase("handoff"):
                comm.send(b"payload", dest=1, tag=2)
        else:
            with comm.phase("drain"):
                comm.recv(source=0, tag=2)

    with pytest.raises(ByteConservationError) as exc_info:
        run_spmd(2, program, sanitize=True)
    message = str(exc_info.value)
    assert "handoff" in message and "drain" in message


def test_byte_conservation_unit_check():
    from repro.mpi.sanitize import check_byte_conservation

    a, b = RankStats(rank=0), RankStats(rank=1)
    with a.phase("x"):
        a.record_send(100)
    with b.phase("x"):
        b.record_recv(100)
    check_byte_conservation([a, b])  # balanced: no raise
    with a.phase("y"):
        a.record_send(50)
    with pytest.raises(ByteConservationError, match="'y'"):
        check_byte_conservation([a, b])
    check_byte_conservation([a, b], phases=["x"])  # scoped: still clean


# ----------------------------------------------------------------------
# session death: reasons must round-trip (regression)
# ----------------------------------------------------------------------
def test_kill_reason_round_trips_into_dead_session_error():
    session = SpmdSession(2)

    def program(comm):
        if comm.rank == 0:
            raise ValueError("kaboom xyz")
        comm.recv(source=0, tag=9)

    with pytest.raises(RankError):
        session.run(program)
    assert session.closed
    with pytest.raises(DeadSessionError) as exc_info:
        session.run(lambda comm: comm.rank)
    err = exc_info.value
    assert "rank 0 raised ValueError: kaboom xyz" in err.reason
    assert err.reason in str(err)


def test_sanitizer_finding_kills_session_with_reason():
    session = SpmdSession(2, sanitize=True)

    def program(comm):
        if comm.rank == 0:
            return comm.bcast(1, root=0)
        return comm.allreduce(1)

    with pytest.raises(CollectiveMismatchError):
        session.run(program)
    assert session.closed
    with pytest.raises(DeadSessionError) as exc_info:
        session.run(lambda comm: comm.rank)
    assert "sanitizer: CollectiveMismatchError" in exc_info.value.reason
