"""Correctness tests for every collective of the simulated communicator."""

import numpy as np
import pytest

from repro.mpi import CommMismatchError, RankError, run_spmd


@pytest.mark.parametrize("size", [1, 2, 3, 4, 8])
def test_barrier_completes(size):
    run_spmd(size, lambda comm: comm.barrier())


@pytest.mark.parametrize("size", [1, 2, 5])
@pytest.mark.parametrize("root", [0, -0])
def test_bcast_scalar(size, root):
    def program(comm):
        value = 42 if comm.rank == root else None
        return comm.bcast(value, root=root)

    assert run_spmd(size, program).values == [42] * size


def test_bcast_from_nonzero_root():
    def program(comm):
        value = {"payload": comm.rank} if comm.rank == 2 else None
        return comm.bcast(value, root=2)["payload"]

    assert run_spmd(4, program).values == [2] * 4


def test_bcast_numpy_array_identity():
    def program(comm):
        arr = np.arange(10, dtype=np.float64) if comm.rank == 0 else None
        out = comm.bcast(arr, root=0)
        return float(out.sum())

    assert run_spmd(3, program).values == [45.0] * 3


def test_bcast_mismatched_root_raises():
    def program(comm):
        return comm.bcast(comm.rank, root=comm.rank % 2)

    with pytest.raises(RankError) as exc_info:
        run_spmd(4, program)
    assert isinstance(exc_info.value.original, CommMismatchError)


def test_bcast_root_out_of_range():
    with pytest.raises(RankError):
        run_spmd(2, lambda comm: comm.bcast(1, root=5))


@pytest.mark.parametrize("size", [1, 3, 6])
def test_gather(size):
    def program(comm):
        return comm.gather(comm.rank * comm.rank, root=0)

    values = run_spmd(size, program).values
    assert values[0] == [r * r for r in range(size)]
    assert all(v is None for v in values[1:])


@pytest.mark.parametrize("size", [1, 2, 4, 9])
def test_allgather(size):
    def program(comm):
        return comm.allgather(chr(ord("a") + comm.rank))

    expected = [chr(ord("a") + r) for r in range(size)]
    assert run_spmd(size, program).values == [expected] * size


def test_scatter():
    def program(comm):
        items = [i * 10 for i in range(comm.size)] if comm.rank == 1 else None
        return comm.scatter(items, root=1)

    assert run_spmd(4, program).values == [0, 10, 20, 30]


def test_scatter_wrong_length_raises():
    def program(comm):
        items = [0] * (comm.size + 1) if comm.rank == 0 else None
        return comm.scatter(items, root=0)

    with pytest.raises(RankError) as exc_info:
        run_spmd(3, program)
    assert isinstance(exc_info.value.original, CommMismatchError)


@pytest.mark.parametrize("size", [1, 2, 4, 7])
def test_alltoall_permutation(size):
    def program(comm):
        send = [comm.rank * 100 + dest for dest in range(comm.size)]
        return comm.alltoall(send)

    values = run_spmd(size, program).values
    for j in range(size):
        assert values[j] == [i * 100 + j for i in range(size)]


def test_alltoall_with_numpy_payloads():
    def program(comm):
        send = [np.full(dest + 1, comm.rank, dtype=np.int64) for dest in range(comm.size)]
        recv = comm.alltoall(send)
        return [int(arr.sum()) for arr in recv]

    values = run_spmd(3, program).values
    # rank j receives from each i an array of j+1 entries all equal to i
    for j in range(3):
        assert values[j] == [i * (j + 1) for i in range(3)]


def test_alltoall_wrong_count_raises():
    def program(comm):
        return comm.alltoall([1] * (comm.size - 1 if comm.rank else comm.size))

    with pytest.raises(RankError) as exc_info:
        run_spmd(3, program)
    assert isinstance(exc_info.value.original, CommMismatchError)


def test_alltoallv_alias():
    def program(comm):
        return comm.alltoallv([None] * comm.size)

    assert run_spmd(2, program).values == [[None, None]] * 2


@pytest.mark.parametrize("size", [1, 2, 5])
def test_reduce_sum(size):
    def program(comm):
        return comm.reduce(comm.rank + 1, root=0)

    values = run_spmd(size, program).values
    assert values[0] == size * (size + 1) // 2
    assert all(v is None for v in values[1:])


def test_reduce_custom_op():
    def program(comm):
        return comm.reduce(comm.rank + 1, op=lambda a, b: a * b, root=0)

    assert run_spmd(4, program).values[0] == 24


@pytest.mark.parametrize("size", [1, 2, 4, 8])
def test_allreduce_sum(size):
    result = run_spmd(size, lambda comm: comm.allreduce(comm.rank))
    expected = size * (size - 1) // 2
    assert result.values == [expected] * size


def test_allreduce_max():
    result = run_spmd(5, lambda comm: comm.allreduce(comm.rank, op=max))
    assert result.values == [4] * 5


def test_scan_inclusive_prefix():
    result = run_spmd(4, lambda comm: comm.scan(comm.rank + 1))
    assert result.values == [1, 3, 6, 10]


def test_collectives_compose_repeatedly():
    def program(comm):
        total = 0
        for i in range(10):
            total += comm.allreduce(comm.rank + i)
        return total

    size = 4
    expected = sum(sum(r + i for r in range(size)) for i in range(10))
    assert run_spmd(size, program).values == [expected] * size
