"""Deterministic fault injection: grammar, injector, session semantics.

Covers the runtime half of the resilience layer (docs/resilience.md):
the ``FaultSpec`` grammar, injector determinism (every failure mode is
exactly reproducible), recoverable-session degradation/respawn, payload
checksums, slow-fault charging, sanitizer interplay, and the watchdog
timeout configuration (``REPRO_SPMD_TIMEOUT`` / ``TsConfig``).
"""

import numpy as np
import pytest

from repro.core import TsConfig
from repro.mpi import (
    DeadSessionError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    PayloadCorruptionError,
    RankError,
    SpmdSession,
    default_timeout,
    fault_env_seeds,
    is_recoverable_failure,
    payload_checksum,
)
from repro.mpi.errors import InjectedCrashFault, InjectedTransientFault
from repro.mpi.faults import corrupt_payload

P = 4


def _alltoall_program(comm):
    """One phased all-to-all; every rank returns the sum of first elements
    (``sum(range(size))`` on a clean run)."""
    with comm.phase("work"):
        payload = [
            np.full(3, comm.rank, dtype=np.int64) for _ in range(comm.size)
        ]
        received = comm.alltoall(payload)
    return sum(int(chunk[0]) for chunk in received if chunk is not None)


CLEAN_VALUE = sum(range(P))


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------
class TestFaultSpecGrammar:
    def test_parse_render_round_trip(self):
        text = (
            "crash@1,task=2,seq=3;transient@0,phase=fetch-B;"
            "slow@2,delay=0.5;corrupt@3"
        )
        plan = FaultPlan.parse(text)
        assert plan.render() == text
        assert FaultPlan.parse(plan.render()) == plan

    def test_unconstrained_fields_are_wildcards(self):
        (spec,) = FaultPlan.parse("crash@2").specs
        assert (spec.task, spec.phase, spec.seq) == (None, None, None)
        assert spec.matches(2, 17, "anything", 99)
        assert not spec.matches(1, 0, "anything", 0)

    def test_constraints_all_match(self):
        (spec,) = FaultPlan.parse("transient@1,task=3,phase=fetch-B,seq=2").specs
        assert spec.matches(1, 3, "fetch-B", 2)
        assert not spec.matches(1, 3, "fetch-B", 1)
        assert not spec.matches(1, 2, "fetch-B", 2)
        assert not spec.matches(1, 3, "send-C", 2)

    @pytest.mark.parametrize(
        "bad",
        [
            "boom@1",          # unknown kind
            "crash",           # no @rank
            "crash@",          # empty rank
            "crash@x",         # non-integer rank
            "crash@1,frob=2",  # unknown constraint
            "crash@-1",        # negative rank
            "slow@0,delay=-1", # negative delay
        ],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("  ;  ")
        assert FaultPlan.parse("crash@0")

    def test_seeded_plans_are_deterministic(self):
        a = FaultPlan.seeded(7, 8, n=6)
        b = FaultPlan.seeded(7, 8, n=6)
        assert a == b and a.render() == b.render()
        assert FaultPlan.seeded(8, 8, n=6) != a

    def test_config_validates_fault_spec_eagerly(self):
        with pytest.raises(ValueError):
            TsConfig(faults="bogus")
        with pytest.raises(ValueError):
            TsConfig(checkpoint="sideways")
        with pytest.raises(ValueError):
            TsConfig(max_retries=-1)
        with pytest.raises(ValueError):
            TsConfig(retry_backoff=-0.1)
        assert TsConfig(faults="crash@0,task=1").faults == "crash@0,task=1"

    def test_fault_env_seeds(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert fault_env_seeds() == (0,)
        assert fault_env_seeds(default=(1, 2)) == (1, 2)
        monkeypatch.setenv("REPRO_FAULTS", "3, 5,8")
        assert fault_env_seeds() == (3, 5, 8)


# ----------------------------------------------------------------------
# injector determinism
# ----------------------------------------------------------------------
class TestInjectorDeterminism:
    def test_fires_at_exact_point_and_only_once(self):
        inj = FaultInjector(FaultPlan.parse("transient@1,task=1,seq=2"))
        inj.begin_task()  # task 0
        assert inj.fire(1, "work") is None
        inj.begin_task()  # task 1: seq counts restart
        assert inj.fire(1, "work") is None  # seq 0
        assert inj.fire(0, "work") is None  # other rank, own counter
        assert inj.fire(1, "work") is None  # seq 1
        spec = inj.fire(1, "work")          # seq 2 -> fires
        assert spec is not None and spec.kind == "transient"
        # at most once, ever — even at the same point of a later task
        inj.begin_task()
        assert all(inj.fire(1, "work") is None for _ in range(4))

    def test_phase_constraint(self):
        inj = FaultInjector(FaultPlan.parse("crash@0,phase=fetch-B"))
        inj.begin_task()
        assert inj.fire(0, "prepare") is None
        assert inj.fire(0, "fetch-B") is not None

    def test_point_kind_separation(self):
        inj = FaultInjector(FaultPlan.parse("corrupt@0;crash@0"))
        inj.begin_task()
        # A collective probe can only fire crash/transient/slow...
        assert inj.fire(0, "work", point="collective").kind == "crash"
        # ...and a payload probe only corrupt.
        assert inj.fire(0, "work", point="payload").kind == "corrupt"

    def test_suspend_counts_probes_without_firing(self):
        inj = FaultInjector(FaultPlan.parse("crash@0,task=0,seq=1"))
        inj.begin_task()
        with inj.suspend():
            assert inj.fire(0, "work") is None  # seq 0
            assert inj.fire(0, "work") is None  # seq 1: match suppressed
        # Counters advanced during suspension, so seq 1 is already past —
        # a suspended window never re-arms earlier sequence points.
        assert inj.fire(0, "work") is None      # seq 2

    def test_raise_for_maps_kinds_to_errors(self):
        inj = FaultInjector(FaultPlan.parse("crash@0;transient@1"))
        crash, transient = inj.plan.specs
        with pytest.raises(InjectedCrashFault):
            inj.raise_for(crash, 0)
        with pytest.raises(InjectedTransientFault) as ei:
            inj.raise_for(transient, 1)
        assert is_recoverable_failure(ei.value)


# ----------------------------------------------------------------------
# session semantics
# ----------------------------------------------------------------------
class TestRecoverableSession:
    def test_crash_degrades_respawns_and_recovers(self):
        inj = FaultInjector(FaultPlan.parse("crash@2,task=0,seq=0"))
        session = SpmdSession(P, recoverable=True, injector=inj)
        try:
            with pytest.raises(RankError) as ei:
                session.run(_alltoall_program)
            failure = ei.value.failure
            assert failure.rank == 2 and failure.kind == "crash"
            assert session.degraded
            assert session.failures == [failure]
            # Partial report of the failed attempt rides on the error.
            assert ei.value.report is not None
            # Crashed worker was respawned: the retry runs clean.
            result = session.run(_alltoall_program)
            assert result.values == [CLEAN_VALUE] * P
            assert not session.degraded
            assert session.dead_reason is None
        finally:
            session.close()

    def test_transient_fault_degrades_without_killing(self):
        inj = FaultInjector(FaultPlan.parse("transient@1,task=0,seq=0"))
        session = SpmdSession(P, recoverable=True, injector=inj)
        try:
            with pytest.raises(RankError) as ei:
                session.run(_alltoall_program)
            assert ei.value.failure.kind == "transient"
            assert session.run(_alltoall_program).values == [CLEAN_VALUE] * P
        finally:
            session.close()

    def test_nonrecoverable_session_dies_with_reason(self):
        inj = FaultInjector(FaultPlan.parse("crash@1,task=0,seq=0"))
        session = SpmdSession(P, recoverable=False, injector=inj)
        try:
            with pytest.raises(RankError):
                session.run(_alltoall_program)
            assert session.dead_reason
            with pytest.raises(DeadSessionError) as ei:
                session.run(_alltoall_program)
            assert "InjectedCrashFault" in ei.value.reason
        finally:
            session.close()

    def test_program_bugs_are_not_recoverable(self):
        """Only *environment* faults degrade; a program bug still kills."""

        def buggy(comm):
            if comm.rank == 0:
                raise ValueError("logic error")
            comm.barrier()

        session = SpmdSession(2, recoverable=True)
        try:
            with pytest.raises(RankError) as ei:
                session.run(buggy, timeout=30.0)
            assert getattr(ei.value, "failure", None) is None
            assert session.dead_reason
        finally:
            session.close()


class TestChecksums:
    def test_corruption_detected_with_checksums(self):
        inj = FaultInjector(FaultPlan.parse("corrupt@0,task=0,seq=0"))
        session = SpmdSession(P, recoverable=True, injector=inj, checksum=True)
        try:
            with pytest.raises(RankError) as ei:
                session.run(_alltoall_program)
            assert isinstance(ei.value.original, PayloadCorruptionError)
            assert ei.value.failure.kind == "corrupt"
            assert session.run(_alltoall_program).values == [CLEAN_VALUE] * P
        finally:
            session.close()

    def test_corruption_silent_without_checksums(self):
        """The detector is opt-in: without it the bad value flows through —
        the run 'succeeds' with wrong numbers (why ``checksum=True`` exists)."""
        inj = FaultInjector(FaultPlan.parse("corrupt@0,task=0,seq=0"))
        session = SpmdSession(P, injector=inj, checksum=False)
        try:
            result = session.run(_alltoall_program)
            assert result.values != [CLEAN_VALUE] * P
            assert session.dead_reason is None
        finally:
            session.close()

    def test_corrupt_payload_copies_on_write(self):
        obj = [np.arange(5), {"k": np.ones(3)}]
        before = payload_checksum(obj)
        mutated, done = corrupt_payload(obj)
        assert done
        assert payload_checksum(mutated) != before
        # The sender's resident arrays are untouched (wire-only flip).
        assert np.array_equal(obj[0], np.arange(5))
        assert payload_checksum(obj) == before

    def test_checksum_ignores_container_identity(self):
        a = {"x": np.arange(4), "y": [np.zeros(2)]}
        b = {"x": np.arange(4), "y": [np.zeros(2)]}
        assert payload_checksum(a) == payload_checksum(b)


class TestSlowFaults:
    def test_slow_fault_charges_virtual_time(self):
        baseline = SpmdSession(P)
        try:
            base = baseline.run(_alltoall_program).report.runtime
        finally:
            baseline.close()
        inj = FaultInjector(
            FaultPlan.parse("slow@1,task=0,seq=0,delay=0.25")
        )
        session = SpmdSession(P, injector=inj)
        try:
            slowed = session.run(_alltoall_program)
            assert slowed.values == [CLEAN_VALUE] * P  # output unaffected
            assert slowed.report.runtime >= base + 0.2
        finally:
            session.close()


class TestSanitizerInterplay:
    def test_transient_fault_is_no_byte_conservation_false_positive(self):
        """A fault aborts the task mid-flight; the sanitizer must not
        misreport the resulting imbalance — conservation is only checked
        on success, and the sanitized retry passes it."""
        inj = FaultInjector(FaultPlan.parse("transient@1,task=0,seq=0"))
        session = SpmdSession(
            P, recoverable=True, injector=inj, sanitize=True
        )
        try:
            with pytest.raises(RankError) as ei:
                session.run(_alltoall_program)
            assert ei.value.failure.kind == "transient"
            assert session.run(_alltoall_program).values == [CLEAN_VALUE] * P
        finally:
            session.close()


# ----------------------------------------------------------------------
# watchdog timeout configuration
# ----------------------------------------------------------------------
class TestWatchdogConfig:
    def test_env_sets_default_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPMD_TIMEOUT", raising=False)
        assert default_timeout() == 600.0
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "42.5")
        assert default_timeout() == 42.5
        session = SpmdSession(2)
        try:
            assert session.timeout == 42.5
        finally:
            session.close()

    def test_explicit_timeout_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "42.5")
        session = SpmdSession(2, timeout=7.0)
        try:
            assert session.timeout == 7.0
        finally:
            session.close()

    @pytest.mark.parametrize("bad", ["banana", "-3", "0"])
    def test_bad_env_values_rejected(self, bad, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", bad)
        with pytest.raises(ValueError):
            default_timeout()

    def test_config_validates_spmd_timeout(self):
        with pytest.raises(ValueError):
            TsConfig(spmd_timeout=0)
        with pytest.raises(ValueError):
            TsConfig(spmd_timeout=-1.0)
        assert TsConfig(spmd_timeout=12.0).spmd_timeout == 12.0

    def test_config_threads_timeout_into_sessions(self):
        from repro.baselines import make_session
        from repro.sparse import random_csr

        A = random_csr(24, 24, nnz_per_row=4, rng=np.random.default_rng(3))
        config = TsConfig(spmd_timeout=33.0)
        for name in ("TS-SpGEMM", "SUMMA-2D", "SUMMA-3D"):
            session = make_session(name, A, 4, config=config)
            try:
                assert session._exec.timeout == 33.0
            finally:
                session.close()
