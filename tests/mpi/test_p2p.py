"""Point-to-point send/recv semantics: matching, ordering, wildcards."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, RankError, run_spmd


def test_simple_send_recv():
    def program(comm):
        if comm.rank == 0:
            comm.send({"x": 1}, dest=1)
            return None
        return comm.recv(source=0)

    assert run_spmd(2, program).values[1] == {"x": 1}


def test_numpy_payload_roundtrip():
    def program(comm):
        if comm.rank == 0:
            comm.send(np.arange(100, dtype=np.float32), dest=1, tag=7)
            return 0.0
        arr = comm.recv(source=0, tag=7)
        return float(arr.sum())

    assert run_spmd(2, program).values[1] == float(np.arange(100).sum())


def test_tag_matching_out_of_order():
    """A receive for tag 2 must skip an earlier tag-1 message."""

    def program(comm):
        if comm.rank == 0:
            comm.send("first", dest=1, tag=1)
            comm.send("second", dest=1, tag=2)
            return None
        second = comm.recv(source=0, tag=2)
        first = comm.recv(source=0, tag=1)
        return (first, second)

    assert run_spmd(2, program).values[1] == ("first", "second")


def test_fifo_within_same_tag():
    def program(comm):
        if comm.rank == 0:
            for i in range(5):
                comm.send(i, dest=1, tag=0)
            return None
        return [comm.recv(source=0, tag=0) for _ in range(5)]

    assert run_spmd(2, program).values[1] == [0, 1, 2, 3, 4]


def test_any_source_wildcard():
    def program(comm):
        if comm.rank == 0:
            received = sorted(comm.recv(source=ANY_SOURCE) for _ in range(comm.size - 1))
            return received
        comm.send(comm.rank, dest=0)
        return None

    assert run_spmd(4, program).values[0] == [1, 2, 3]


def test_any_tag_wildcard():
    def program(comm):
        if comm.rank == 0:
            comm.send("x", dest=1, tag=99)
            return None
        return comm.recv(source=0, tag=ANY_TAG)

    assert run_spmd(2, program).values[1] == "x"


def test_source_matching_with_multiple_senders():
    def program(comm):
        if comm.rank == 0:
            a = comm.recv(source=2)
            b = comm.recv(source=1)
            return (a, b)
        comm.send(f"from-{comm.rank}", dest=0)
        return None

    assert run_spmd(3, program).values[0] == ("from-2", "from-1")


def test_sendrecv_exchange():
    def program(comm):
        partner = 1 - comm.rank
        return comm.sendrecv(comm.rank * 10, dest=partner, source=partner)

    assert run_spmd(2, program).values == [10, 0]


def test_ring_pipeline():
    """Pass a token around a ring, accumulating ranks."""

    def program(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        if comm.rank == 0:
            comm.send([0], dest=right)
            token = comm.recv(source=left)
            return token
        token = comm.recv(source=left)
        comm.send(token + [comm.rank], dest=right)
        return None

    result = run_spmd(5, program)
    assert result.values[0] == [0, 1, 2, 3, 4]


def test_send_to_invalid_dest_raises():
    def program(comm):
        comm.send(1, dest=99)

    with pytest.raises(RankError):
        run_spmd(2, program)


def test_send_advances_virtual_time():
    def program(comm):
        if comm.rank == 0:
            t0 = comm.time
            comm.send(np.zeros(1 << 20), dest=1)  # 8 MiB
            assert comm.time > t0  # latency charged on sender
            return comm.time
        msg = comm.recv(source=0)
        return comm.time

    values = run_spmd(2, program).values
    # Receiver waits for the full wire time, which exceeds sender overhead.
    assert values[1] > values[0]
