"""Tests for the SPMD executor: launch, results, failure propagation."""

import threading

import pytest

from repro.mpi import DeadlockError, RankError, SpmdResult, SpmdSession, run_spmd


def test_single_rank_returns_value():
    result = run_spmd(1, lambda comm: comm.rank * 10 + comm.size)
    assert result.values == [1]


def test_each_rank_gets_distinct_rank():
    result = run_spmd(5, lambda comm: comm.rank)
    assert result.values == [0, 1, 2, 3, 4]


def test_size_reported_consistently():
    result = run_spmd(7, lambda comm: comm.size)
    assert result.values == [7] * 7


def test_args_and_kwargs_forwarded():
    def program(comm, a, b, scale=1):
        return (a + b) * scale + comm.rank

    result = run_spmd(3, program, 2, 3, scale=10)
    assert result.values == [50, 51, 52]


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        run_spmd(0, lambda comm: None)


def test_rank_exception_wrapped_with_rank_id():
    def program(comm):
        if comm.rank == 2:
            raise ValueError("boom on rank 2")
        comm.barrier()  # peers must be released, not deadlock

    with pytest.raises(RankError) as exc_info:
        run_spmd(4, program)
    assert exc_info.value.rank == 2
    assert isinstance(exc_info.value.original, ValueError)


def test_failure_during_collective_releases_peers():
    def program(comm):
        if comm.rank == 0:
            raise RuntimeError("early failure")
        # Peers block in a collective that rank 0 never joins.
        comm.allgather(comm.rank)

    with pytest.raises(RankError) as exc_info:
        run_spmd(3, program)
    assert exc_info.value.rank == 0


def test_failure_during_recv_releases_peers():
    def program(comm):
        if comm.rank == 0:
            raise RuntimeError("no send will ever come")
        comm.recv(source=0)

    with pytest.raises(RankError):
        run_spmd(2, program)


def test_watchdog_detects_deadlock():
    def program(comm):
        if comm.rank == 0:
            comm.recv(source=1)  # rank 1 never sends: genuine deadlock

    with pytest.raises(DeadlockError):
        run_spmd(2, program, timeout=1.0)


def test_result_is_sequence_like():
    result = run_spmd(3, lambda comm: comm.rank)
    assert isinstance(result, SpmdResult)
    assert len(result) == 3
    assert list(result) == [0, 1, 2]
    assert result[2] == 2


def test_report_has_per_rank_entries():
    result = run_spmd(4, lambda comm: None)
    report = result.report
    assert report.size == 4
    assert len(report.clocks) == 4
    assert len(report.rank_stats) == 4
    assert report.runtime >= 0.0


def test_many_ranks_complete():
    # Thread-based runtime must handle a "large" rank count.
    result = run_spmd(64, lambda comm: comm.allreduce(1))
    assert result.values == [64] * 64


def test_threads_do_not_leak():
    before = threading.active_count()
    run_spmd(8, lambda comm: comm.barrier())
    after = threading.active_count()
    assert after <= before + 1  # allow for unrelated daemon churn


class TestSpmdSession:
    """Resident rank workers: reuse, abort fan-out, dead-session contract."""

    def test_tasks_reuse_the_same_worker_threads(self):
        session = SpmdSession(4)
        try:
            idents1 = session.run(lambda comm: threading.get_ident()).values
            idents2 = session.run(lambda comm: threading.get_ident()).values
            assert idents1 == idents2  # persistent workers, not respawned
            assert len(set(idents1)) == 4
        finally:
            session.close()

    def test_per_task_reports_are_incremental(self):
        """Each task gets fresh clocks/stats: a second task's report must
        not include the first task's traffic."""
        session = SpmdSession(3)
        try:
            first = session.run(lambda comm: comm.allgather(b"x" * 1000))
            second = session.run(lambda comm: comm.barrier())
            assert first.report.total_bytes() > 0
            assert second.report.total_bytes() == 0
        finally:
            session.close()

    def test_rank_failure_aborts_whole_session(self):
        """A rank raising mid-task must release peers blocked in a
        collective and kill the session cleanly."""
        session = SpmdSession(4)

        def program(comm):
            if comm.rank == 1:
                raise ValueError("boom on rank 1")
            comm.allgather(comm.rank)  # peers must be released

        with pytest.raises(RankError) as exc_info:
            session.run(program)
        assert exc_info.value.rank == 1
        assert session.closed

    def test_dead_session_refuses_further_runs(self):
        session = SpmdSession(2)

        def program(comm):
            if comm.rank == 0:
                raise RuntimeError("die")
            comm.barrier()

        with pytest.raises(RankError):
            session.run(program)
        with pytest.raises(RuntimeError, match="closed"):
            session.run(lambda comm: comm.rank)

    def test_deadlock_kills_session(self):
        session = SpmdSession(2, timeout=1.0)

        def program(comm):
            if comm.rank == 0:
                comm.recv(source=1)  # rank 1 never sends

        with pytest.raises(DeadlockError):
            session.run(program)
        assert session.closed
        with pytest.raises(RuntimeError, match="closed"):
            session.run(lambda comm: comm.rank)

    def test_close_is_idempotent_and_joins_workers(self):
        before = threading.active_count()
        session = SpmdSession(6)
        session.run(lambda comm: comm.barrier())
        session.close()
        session.close()  # idempotent
        after = threading.active_count()
        assert after <= before + 1
        with pytest.raises(RuntimeError, match="closed"):
            session.run(lambda comm: comm.rank)

    def test_session_survives_many_tasks(self):
        session = SpmdSession(3)
        try:
            for i in range(20):
                result = session.run(lambda comm, i=i: comm.allreduce(i))
                assert result.values == [3 * i] * 3
        finally:
            session.close()

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            SpmdSession(0)
