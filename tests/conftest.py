"""Shared fixtures and helpers for the test suite."""

import numpy as np
import pytest

from repro.sparse import CsrMatrix, coo_to_csr


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def random_dense(rng, nrows, ncols, density=0.3, dtype=np.float64):
    """Random dense matrix with ~density fraction of nonzeros."""
    mask = rng.random((nrows, ncols)) < density
    if dtype == np.bool_:
        return mask
    vals = rng.integers(1, 10, size=(nrows, ncols)).astype(dtype)
    return np.where(mask, vals, 0)


def csr_from_dense(dense) -> CsrMatrix:
    return CsrMatrix.from_dense(np.asarray(dense))
