"""Traffic-generator tests: determinism of the workload, exactly-once
delivery under a mixed stream, and admission-control vs backpressure
producer semantics."""

import numpy as np
import pytest

from repro.data.generators import erdos_renyi
from repro.serve import (
    QueryService,
    TrafficMix,
    collect_results,
    make_queries,
    run_traffic,
)

N = 100
P = 2


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(N, 4.0, seed=9)


def test_make_queries_is_deterministic():
    a = make_queries(50, N, seed=42, deadline=1.0, deadline_fraction=0.3)
    b = make_queries(50, N, seed=42, deadline=1.0, deadline_fraction=0.3)
    assert len(a) == len(b) == 50
    for qa, qb in zip(a, b):
        assert qa.kind == qb.kind
        assert qa.priority == qb.priority
        assert qa.deadline == qb.deadline
        if qa.sources is not None:
            np.testing.assert_array_equal(qa.sources, qb.sources)
        if qa.vertices is not None:
            np.testing.assert_array_equal(qa.vertices, qb.vertices)


def test_mix_fractions_are_respected():
    queries = make_queries(
        400, N, mix=TrafficMix(bfs=1.0, influence=0.0, embedding=0.0)
    )
    assert all(q.kind == "bfs" for q in queries)


def test_mixed_stream_exactly_once(graph):
    rng = np.random.default_rng(0)
    Z = rng.standard_normal((N, 4))
    queries = make_queries(60, N, seed=1, sample_pool=2)
    with QueryService(graph, P, batch_width=16, embedding=Z) as svc:
        report = run_traffic(svc, queries, backpressure=True)
        results = collect_results(report, timeout=120.0)
    assert not report.rejected  # backpressure never rejects
    assert len(results) == 60
    assert all(r.ok for r in results.values())
    snap = svc.metrics.snapshot()
    assert snap["accepted"] == snap["delivered"] == 60
    assert snap["duplicates"] == 0
    # Batching actually happened: far fewer multiplies than queries.
    assert snap["batches"] < 60
    assert snap["mean_batch_size"] > 1.0


def test_admission_control_counts_structured_rejections(graph):
    queries = make_queries(
        40, N, seed=2, mix=TrafficMix(bfs=0.8, influence=0.2, embedding=0.0)
    )
    svc = QueryService(graph, P, start=False, capacity=8)
    svc._accepting = True  # stage without a dispatcher: forces saturation
    report = run_traffic(svc, queries, backpressure=False)
    assert len(report.rejected) == 40 - 8
    for err in report.overload_errors:
        assert err.capacity == 8
        assert err.queue_depth == 8
        assert err.retry_after > 0
    svc.start()
    try:
        results = collect_results(report, timeout=120.0)
    finally:
        svc.stop()
    assert len(results) == 8
    assert all(r.ok for r in results.values())


def test_resubmit_honours_the_backoff_hint(graph):
    """``resubmit=N`` makes the producer sleep each rejection's
    ``retry_after`` and retry before giving up — on a staged (never
    draining) queue every overflow query burns exactly N resubmits."""
    queries = make_queries(
        12, N, seed=3, mix=TrafficMix(bfs=1.0, influence=0.0, embedding=0.0)
    )
    svc = QueryService(graph, P, start=False, capacity=8)
    svc._accepting = True  # stage without a dispatcher: forces saturation
    report = run_traffic(svc, queries, backpressure=False, resubmit=2)
    assert len(report.rejected) == 4
    assert report.resubmits == 4 * 2
    # The producer actually slept the hints (0.01 s * depth 8 per retry).
    assert report.submit_seconds >= 8 * 0.9 * (0.01 * 8)
    svc.start()
    try:
        results = collect_results(report, timeout=120.0)
    finally:
        svc.stop()
    assert len(results) == 8
    assert all(r.ok for r in results.values())


def test_resubmit_admits_when_capacity_frees_up(graph):
    """With a live dispatcher draining the queue, resubmission converts
    would-be rejections into admissions — exactly once, nothing lost."""
    queries = make_queries(
        24, N, seed=4, mix=TrafficMix(bfs=1.0, influence=0.0, embedding=0.0)
    )
    with QueryService(graph, P, capacity=4, batch_width=4) as svc:
        report = run_traffic(
            svc, queries, backpressure=False, resubmit=10_000
        )
        results = collect_results(report, timeout=120.0)
    assert not report.rejected
    assert len(results) == 24
    assert all(r.ok for r in results.values())
    snap = svc.metrics.snapshot()
    assert snap["accepted"] == snap["delivered"] == 24
    assert snap["duplicates"] == 0


def test_resubmit_rejects_negative():
    with pytest.raises(ValueError):
        run_traffic(None, [], resubmit=-1)
