"""Admission queue unit tests: bounds, priorities, aging, deadlines,
shedding, backpressure — no sessions, so these are fast and exact."""

import threading
import time

import pytest

from repro.serve import (
    AdmissionQueue,
    OverloadError,
    Ticket,
    bfs_query,
    embedding_query,
)


def _ticket(qid, query, accepted_at=None):
    return Ticket(
        qid, query, time.monotonic() if accepted_at is None else accepted_at
    )


class TestAdmissionControl:
    def test_rejects_when_full(self):
        q = AdmissionQueue(3)
        for i in range(3):
            q.submit(_ticket(i, bfs_query(0)))
        with pytest.raises(OverloadError) as exc_info:
            q.submit(_ticket(99, bfs_query(0)))
        err = exc_info.value
        assert err.queue_depth == 3
        assert err.capacity == 3
        assert err.retry_after > 0

    def test_rejection_is_structured_and_synchronous(self):
        q = AdmissionQueue(1)
        q.submit(_ticket(0, bfs_query(0)))
        t0 = time.monotonic()
        with pytest.raises(OverloadError):
            q.submit(_ticket(1, bfs_query(0)))
        assert time.monotonic() - t0 < 0.1  # no hidden blocking

    def test_blocking_submit_waits_for_slot(self):
        q = AdmissionQueue(1)
        q.submit(_ticket(0, bfs_query(0)))

        def drain_later():
            time.sleep(0.1)
            q.take_batch(1, wait=0.0)

        threading.Thread(target=drain_later, daemon=True).start()
        q.submit(_ticket(1, bfs_query(0)), block=True, timeout=5.0)
        assert q.depth == 1

    def test_blocking_submit_times_out_with_overload(self):
        q = AdmissionQueue(1)
        q.submit(_ticket(0, bfs_query(0)))
        with pytest.raises(OverloadError):
            q.submit(_ticket(1, bfs_query(0)), block=True, timeout=0.05)

    def test_depth_and_high_water(self):
        q = AdmissionQueue(8)
        for i in range(5):
            q.submit(_ticket(i, bfs_query(0)))
        assert q.depth == 5
        q.take_batch(8, wait=0.0)
        assert q.depth == 0
        assert q.max_depth == 5


class TestPriorityAndAging:
    def test_higher_priority_dispatches_first(self):
        q = AdmissionQueue(8, aging_rate=0.0)
        q.submit(_ticket(1, bfs_query(0, priority=1.0)))
        q.submit(_ticket(2, bfs_query(0, priority=5.0)))
        q.submit(_ticket(3, bfs_query(0, priority=3.0)))
        batch, _ = q.take_batch(3, wait=0.0)
        assert [t.qid for t in batch] == [2, 3, 1]

    def test_aging_lifts_old_low_priority_past_fresh_high(self):
        q = AdmissionQueue(8, aging_rate=100.0)
        now = time.monotonic()
        # Low priority, but admitted 0.2s ago: effective 0 + 100*0.2 = 20.
        q.submit(_ticket(1, bfs_query(0, priority=0.0), accepted_at=now - 0.2))
        q.submit(_ticket(2, bfs_query(0, priority=10.0), accepted_at=now))
        batch, _ = q.take_batch(1, wait=0.0)
        assert batch[0].qid == 1

    def test_no_aging_keeps_strict_priority(self):
        q = AdmissionQueue(8, aging_rate=0.0)
        now = time.monotonic()
        q.submit(_ticket(1, bfs_query(0, priority=0.0), accepted_at=now - 10))
        q.submit(_ticket(2, bfs_query(0, priority=1.0), accepted_at=now))
        batch, _ = q.take_batch(1, wait=0.0)
        assert batch[0].qid == 2


class TestBatching:
    def test_batch_shares_leader_key_only(self):
        q = AdmissionQueue(8, aging_rate=0.0)
        q.submit(_ticket(1, bfs_query(0, priority=2.0)))
        q.submit(_ticket(2, embedding_query(0, priority=1.5)))
        q.submit(_ticket(3, bfs_query(1, priority=1.0)))
        batch, _ = q.take_batch(8, wait=0.0)
        # Leader is qid 1 (bfs); the embedding query must not ride along.
        assert [t.qid for t in batch] == [1, 3]
        assert q.depth == 1

    def test_width_bounds_batch(self):
        q = AdmissionQueue(16, aging_rate=0.0)
        for i in range(10):
            q.submit(_ticket(i, bfs_query(0)))
        batch, _ = q.take_batch(4, wait=0.0)
        assert len(batch) == 4
        assert q.depth == 6


class TestDeadlines:
    def test_expired_entries_are_separated(self):
        q = AdmissionQueue(8)
        now = time.monotonic()
        q.submit(
            _ticket(1, bfs_query(0, deadline=0.01), accepted_at=now - 1.0)
        )
        q.submit(_ticket(2, bfs_query(0)))
        batch, expired = q.take_batch(8, wait=0.0)
        assert [t.qid for t in expired] == [1]
        assert [t.qid for t in batch] == [2]
        assert q.depth == 0


class TestShedding:
    def test_shed_evicts_lowest_effective_priority(self):
        q = AdmissionQueue(8, aging_rate=0.0)
        for i, prio in enumerate([5.0, 1.0, 3.0, 0.5]):
            q.submit(_ticket(i, bfs_query(0, priority=prio)))
        shed = q.shed(2)
        assert sorted(t.qid for t in shed) == [1, 3]  # the two lowest
        assert q.depth == 2

    def test_shed_noop_under_watermark(self):
        q = AdmissionQueue(8)
        q.submit(_ticket(1, bfs_query(0)))
        assert q.shed(4) == []
        assert q.depth == 1


class TestClose:
    def test_close_wakes_blocked_producer(self):
        q = AdmissionQueue(1)
        q.submit(_ticket(0, bfs_query(0)))
        errors = []

        def producer():
            try:
                q.submit(_ticket(1, bfs_query(0)), block=True, timeout=10.0)
            except RuntimeError as exc:  # includes OverloadError
                errors.append(exc)

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert len(errors) == 1
