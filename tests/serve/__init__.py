"""Test package marker: enables relative imports from the shared conftest."""
