"""End-to-end query-service tests: batching bit-identity, exactly-once
delivery, deadlines, admission control, shedding, fairness under load,
and fault-tolerant serving (in-task recovery and pool respawn)."""

import time

import numpy as np
import pytest

from repro.apps.influence import sample_keep_mask, sample_rng
from repro.apps.msbfs import msbfs, reference_reachability
from repro.core.config import TsConfig
from repro.data.generators import erdos_renyi
from repro.mpi.errors import DeadSessionError
from repro.serve import (
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_SHED,
    DeadlineExpired,
    OverloadError,
    QueryService,
    ServiceStopped,
    ShedError,
    bfs_query,
    embedding_query,
    influence_query,
    split_visited_columns,
)
from repro.sparse.ops import mask_entries

N = 120
P = 2


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(N, 4.0, seed=7)


@pytest.fixture(scope="module")
def a_bool(graph):
    return graph if graph.dtype == np.bool_ else graph.astype(np.bool_)


def _paused_service(graph, **kwargs):
    """A service that admits queries but has no dispatcher running yet,
    so tests can stage the queue deterministically before start()."""
    svc = QueryService(graph, P, start=False, **kwargs)
    svc._accepting = True
    return svc


def _reference_columns(a_bool, sources):
    visited = reference_reachability(a_bool, np.asarray(sources))
    return split_visited_columns(visited)


class TestBatchedCorrectness:
    def test_batched_bfs_bit_identical_to_reference(self, graph, a_bool):
        sources = list(range(10))
        expected = _reference_columns(a_bool, sources)
        with QueryService(graph, P, batch_width=16) as svc:
            tickets = [svc.submit(bfs_query(s)) for s in sources]
            results = [t.result(timeout=60.0) for t in tickets]
        for j, res in enumerate(results):
            assert res.ok
            assert np.array_equal(res.value[0], expected[j])
        snap = svc.metrics.snapshot()
        assert snap["accepted"] == snap["delivered"] == len(sources)
        assert snap["duplicates"] == 0

    def test_multi_source_query_splits_correctly(self, graph, a_bool):
        expected = _reference_columns(a_bool, [3, 50, 77])
        with QueryService(graph, P) as svc:
            res = svc.submit(bfs_query([3, 50, 77])).result(timeout=60.0)
        assert res.ok
        assert len(res.value) == 3
        for j in range(3):
            assert np.array_equal(res.value[j], expected[j])

    def test_influence_matches_fresh_masked_run(self, graph, a_bool):
        sources = np.array([2, 9], dtype=np.int64)
        keep = sample_keep_mask(a_bool, 0.4, sample_rng(11, 3))
        expected = msbfs(
            mask_entries(a_bool, keep), sources, P
        ).reachable_counts()
        with QueryService(graph, P) as svc:
            res = svc.submit(
                influence_query(
                    sources, sample_seed=11, sample=3, probability=0.4
                )
            ).result(timeout=60.0)
        assert res.ok
        np.testing.assert_array_equal(res.value, expected)

    def test_influence_batching_is_grouping_invariant(self, graph):
        # The same (seed, sample) query answered solo and inside a batch
        # of same-sample peers must be bit-identical.
        q = dict(sample_seed=5, sample=1, probability=0.5)
        with QueryService(graph, P, batch_width=8) as svc:
            solo = svc.submit(influence_query(4, **q)).result(timeout=60.0)
            batched = [
                svc.submit(influence_query(s, **q)) for s in (7, 4, 19)
            ]
            together = [t.result(timeout=60.0) for t in batched]
        assert solo.ok and all(r.ok for r in together)
        np.testing.assert_array_equal(solo.value, together[1].value)

    def test_embedding_lookup_returns_rows(self, graph):
        rng = np.random.default_rng(3)
        Z = rng.standard_normal((N, 6))
        with QueryService(graph, P, embedding=Z) as svc:
            res = svc.submit(embedding_query([5, 99, 5])).result(
                timeout=60.0
            )
        assert res.ok
        np.testing.assert_array_equal(res.value, Z[[5, 99, 5]])


class TestDeadlines:
    def test_queued_past_deadline_expires_with_structured_error(self, graph):
        svc = _paused_service(graph)
        doomed = svc.submit(bfs_query(0, deadline=0.01))
        healthy = svc.submit(bfs_query(1))
        time.sleep(0.05)
        svc.start()
        try:
            res = doomed.result(timeout=30.0)
            assert res.status == STATUS_EXPIRED
            assert isinstance(res.error, DeadlineExpired)
            assert healthy.result(timeout=30.0).ok
        finally:
            svc.stop()
        snap = svc.metrics.snapshot()
        assert snap[STATUS_EXPIRED] == 1
        assert snap["delivered"] == snap["accepted"] == 2


class TestAdmissionControl:
    def test_saturated_queue_rejects_structurally(self, graph):
        svc = _paused_service(graph, capacity=4)
        tickets = [svc.submit(bfs_query(i)) for i in range(4)]
        with pytest.raises(OverloadError) as exc_info:
            svc.submit(bfs_query(99))
        assert exc_info.value.queue_depth == 4
        assert exc_info.value.capacity == 4
        assert exc_info.value.retry_after > 0
        # Backpressure submit on a stalled service times out the same way.
        with pytest.raises(OverloadError):
            svc.submit(bfs_query(99), block=True, timeout=0.05)
        svc.start()
        try:
            assert all(t.result(timeout=60.0).ok for t in tickets)
        finally:
            svc.stop()
        snap = svc.metrics.snapshot()
        assert snap["rejected"] == 2
        assert snap["accepted"] == snap["delivered"] == 4

    def test_submit_after_stop_fails_fast(self, graph):
        svc = QueryService(graph, P)
        svc.stop()
        with pytest.raises(ServiceStopped):
            svc.submit(bfs_query(0))


class TestLoadShedding:
    def test_watermark_sheds_lowest_priority(self, graph):
        svc = _paused_service(
            graph, capacity=8, shed_watermark=0.25, batch_width=8
        )
        tickets = [
            svc.submit(bfs_query(i, priority=float(i))) for i in range(8)
        ]
        svc.start()
        try:
            results = [t.result(timeout=60.0) for t in tickets]
        finally:
            svc.stop()
        statuses = [r.status for r in results]
        # Watermark 0.25 * capacity 8 = keep 2: the two highest priority.
        assert statuses[-2:] == [STATUS_OK, STATUS_OK]
        assert statuses[:-2] == [STATUS_SHED] * 6
        assert all(isinstance(r.error, ShedError) for r in results[:-2])
        snap = svc.metrics.snapshot()
        assert snap[STATUS_SHED] == 6
        assert snap["delivered"] == snap["accepted"] == 8


class TestFairness:
    def test_aged_low_priority_survives_high_priority_stream(self, graph):
        # A single low-priority query against a sustained stream of
        # high-priority ones: aging must lift it into a batch long before
        # the stream ends (no starvation).
        svc = QueryService(
            graph, P, batch_width=1, capacity=64, aging_rate=50.0
        )
        try:
            low = svc.submit(bfs_query(0, priority=0.0))
            deadline = time.monotonic() + 30.0
            while not low.done and time.monotonic() < deadline:
                try:
                    svc.submit(bfs_query(1, priority=10.0))
                except OverloadError:
                    time.sleep(0.005)
            assert low.done, "low-priority query starved by high traffic"
            assert low.result(timeout=0.0).ok
        finally:
            svc.stop(drain=False)
        snap = svc.metrics.snapshot()
        # Every admitted ticket resolved (served or failed-at-shutdown).
        assert snap["delivered"] == snap["accepted"]
        assert snap["duplicates"] == 0


class TestFaultTolerance:
    FAULT_CONFIG = TsConfig(
        recoverable=True,
        checkpoint="neighbor",
        faults="crash@1,phase=fused-round",
        retry_backoff=0.0,
    )

    def test_crash_mid_stream_bit_identical_exactly_once(
        self, graph, a_bool
    ):
        sources = list(range(12))
        expected = _reference_columns(a_bool, sources)
        with QueryService(
            graph, P, config=self.FAULT_CONFIG, batch_width=4
        ) as svc:
            tickets = [svc.submit(bfs_query(s)) for s in sources]
            results = [t.result(timeout=120.0) for t in tickets]
        for j, res in enumerate(results):
            assert res.ok, f"query {j} not served: {res.status}"
            assert np.array_equal(res.value[0], expected[j])
        snap = svc.metrics.snapshot()
        assert snap["retries"] >= 1, "injected crash never fired"
        assert snap["recoveries"] >= 1
        assert snap["degraded_batches"] >= 1, (
            "service never served at degraded width while healing"
        )
        assert snap["duplicates"] == 0
        assert snap[STATUS_OK] == snap["accepted"] == len(sources)
        assert snap["failed"] == 0

    def test_session_death_respawns_and_reexecutes(self, graph, a_bool):
        sources = [0, 1, 2, 3]
        expected = _reference_columns(a_bool, sources)
        svc = QueryService(graph, P, batch_width=8, start=False)
        real_execute = svc._execute
        calls = {"n": 0}

        def dying_execute(session, queries):
            calls["n"] += 1
            if calls["n"] == 1:
                raise DeadSessionError("simulated watchdog kill")
            return real_execute(session, queries)

        svc._execute = dying_execute
        svc._accepting = True
        tickets = [svc.submit(bfs_query(s)) for s in sources]
        svc.start()
        try:
            results = [t.result(timeout=120.0) for t in tickets]
        finally:
            svc.stop()
        for j, res in enumerate(results):
            assert res.ok
            assert np.array_equal(res.value[0], expected[j])
        assert calls["n"] >= 2, "batch was not re-executed"
        snap = svc.metrics.snapshot()
        assert snap["respawns"] >= 1
        assert snap["degraded_batches"] >= 0  # window armed after respawn
        assert snap["duplicates"] == 0
        assert svc.pool._slots[0].generation >= 1


class TestLifecycle:
    def test_stop_resolves_every_admitted_ticket(self, graph):
        svc = _paused_service(graph, batch_width=2)
        tickets = [svc.submit(bfs_query(i)) for i in range(6)]
        svc.start()
        svc.stop(drain=False)
        for t in tickets:
            res = t.result(timeout=30.0)  # never hangs
            assert res.status in (STATUS_OK, "failed")
            if res.status == "failed":
                assert isinstance(res.error, ServiceStopped)
        snap = svc.metrics.snapshot()
        assert snap["delivered"] == snap["accepted"] == 6

    def test_validation_rejects_bad_queries(self, graph):
        with QueryService(graph, P) as svc:
            with pytest.raises(ValueError):
                svc.submit(bfs_query(N + 5))
            with pytest.raises(ValueError):
                svc.submit(embedding_query(0))  # no embedding held
            with pytest.raises(ValueError):
                svc.submit(bfs_query(0, deadline=-1.0))

    def test_health_check_counts_zero_when_healthy(self, graph):
        with QueryService(graph, P) as svc:
            assert svc.health_check() == 0
