#!/usr/bin/env python
"""Closeness centrality and BFS forests — the §I motivations, end to end.

The paper motivates TS-SpGEMM with influence-maximization/centrality
workloads built on multi-source BFS.  This example runs both derived
applications on one scale-free graph:

1. **closeness centrality** of sampled sources (one boolean MSBFS),
   cross-checked against networkx;
2. **BFS parent forests** on the (sel2nd, min) semiring (§IV-A's
   tree-reconstruction variant), validated structurally.

Run:  python examples/centrality_and_trees.py
"""

import networkx as nx
import numpy as np

from repro.analysis import fmt_seconds, print_table
from repro.apps import closeness_centrality, msbfs_tree, validate_forest
from repro.data import random_sources, rmat
from repro.mpi import SCALED_PERLMUTTER


def main() -> None:
    n, p = 1024, 8
    adj = rmat(n, 8, seed=17)
    print(f"Graph: RMAT({n}), avg degree ~8, nnz={adj.nnz:,}; p = {p} ranks")

    # --- closeness centrality ------------------------------------------
    sources = random_sources(n, 24, seed=6)
    result = closeness_centrality(adj, sources, p, machine=SCALED_PERLMUTTER)

    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(zip(adj.row_ids().tolist(), adj.indices.tolist()))
    expected = nx.closeness_centrality(g, wf_improved=True)
    for j, s in enumerate(sources):
        assert abs(result.closeness[j] - expected[int(s)]) < 1e-9

    order = np.argsort(-result.closeness)[:5]
    print_table(
        f"Top-5 most central of {len(sources)} sampled vertices "
        f"(MSBFS total {fmt_seconds(result.total_runtime)})",
        ["vertex", "closeness", "reachable", "sum of distances"],
        [
            [
                int(sources[j]),
                f"{result.closeness[j]:.4f}",
                int(result.reachable[j]),
                int(result.distance_sums[j]),
            ]
            for j in order
        ],
    )
    print("Closeness verified against networkx for every sampled source.")

    # --- BFS parent forests ---------------------------------------------
    tree_sources = random_sources(n, 8, seed=9)
    forest = msbfs_tree(adj, tree_sources, p, machine=SCALED_PERLMUTTER)
    assert validate_forest(adj, tree_sources, forest)
    depths = forest.levels.max(axis=0)
    print_table(
        "BFS forests on the (sel2nd, min) semiring",
        ["source", "tree depth", "vertices reached"],
        [
            [int(s), int(depths[j]), int((forest.levels[:, j] >= 0).sum())]
            for j, s in enumerate(tree_sources)
        ],
    )
    print(
        "Forest invariants verified: every parent is one level up and "
        "every tree edge exists in the graph."
    )


if __name__ == "__main__":
    main()
