#!/usr/bin/env python
"""AMG setup-phase products with TS-SpGEMM.

The paper's third motivating application (§I): "In the context of
Algebraic Multigrid methods, TS-SpGEMM is utilized during the setup
phase, where B is the restriction matrix created from a distance-2
maximal independent set computation."  This example builds a 2-D Poisson
problem, constructs an aggregation-based prolongator P (tall and skinny,
extremely sparse: one nonzero per row), and computes the two setup-phase
products distributedly:

    AP  = A · P          (a TS-SpGEMM; P is n × nc with nc ≪ n)
    A_c = Pᵀ · (A · P)   (the Galerkin coarse operator)

verifying both against scipy and reporting the modelled cost breakdown.

Run:  python examples/amg_restriction.py
"""

import numpy as np
import scipy.sparse as sp

import repro
from repro.analysis import fmt_bytes, fmt_seconds, print_table
from repro.mpi import SCALED_PERLMUTTER
from repro.sparse import CsrMatrix, coo_to_csr, spgemm, transpose


def poisson_2d(k: int) -> CsrMatrix:
    """Standard 5-point Laplacian on a k×k grid (n = k²)."""
    main = sp.diags([4.0] * k) - sp.diags([1.0] * (k - 1), 1) - sp.diags(
        [1.0] * (k - 1), -1
    )
    eye = sp.identity(k)
    lap = sp.kron(eye, main) + sp.kron(
        sp.diags([1.0] * (k - 1), 1) + sp.diags([1.0] * (k - 1), -1), -eye
    )
    return CsrMatrix.from_scipy(lap.tocsr())


def aggregation_prolongator(k: int, agg: int = 2) -> CsrMatrix:
    """Piecewise-constant prolongator aggregating agg×agg grid patches.

    Each fine vertex maps to exactly one coarse aggregate — the classic
    tall-and-skinny, one-nonzero-per-row restriction pattern the paper
    refers to.
    """
    n = k * k
    kc = -(-k // agg)
    rows = np.arange(n)
    x, y = rows % k, rows // k
    cols = (x // agg) + kc * (y // agg)
    vals = np.ones(n)
    return coo_to_csr(rows, cols, vals, (n, kc * kc))


def main() -> None:
    k, p = 96, 16
    A = poisson_2d(k)
    P = aggregation_prolongator(k)
    n, nc = P.shape
    print(
        f"AMG setup: 2-D Poisson {k}x{k} (n={n}, nnz={A.nnz:,}); "
        f"prolongator P is {n}x{nc} with 1 nnz/row "
        f"({100 * (1 - P.nnz / (n * nc)):.1f}% sparse); p = {p} ranks"
    )

    # --- AP: the tall-and-skinny product --------------------------------
    ap_result = repro.ts_spgemm(A, P, p, machine=SCALED_PERLMUTTER)
    expected_ap, _ = spgemm(A, P)
    assert ap_result.C.equal(expected_ap), "AP mismatch"

    # --- Galerkin coarse operator Ac = P^T (A P) -------------------------
    # P^T is short-and-fat; compute serially (it is not the TS regime) and
    # verify the full triple product against scipy.
    coarse, _ = spgemm(transpose(P), ap_result.C)
    scipy_coarse = (
        P.to_scipy().T @ (A.to_scipy() @ P.to_scipy())
    ).tocsr()
    assert coarse.equal(CsrMatrix.from_scipy(scipy_coarse)), "Galerkin mismatch"

    print_table(
        "AMG setup products (distributed AP via TS-SpGEMM)",
        ["quantity", "value"],
        [
            ["AP shape / nnz", f"{ap_result.C.shape} / {ap_result.C.nnz:,}"],
            ["AP multiply time (modelled)", fmt_seconds(ap_result.multiply_time)],
            ["AP communication", fmt_seconds(ap_result.comm_time)],
            ["AP bytes on wire", fmt_bytes(ap_result.comm_bytes())],
            ["remote tiles chosen", ap_result.diagnostics["remote_tiles"]],
            ["coarse operator", f"{coarse.shape}, nnz={coarse.nnz:,}"],
            [
                "coarsening ratio",
                f"{A.nnz / max(coarse.nnz, 1):.1f}x fewer nonzeros",
            ],
        ],
    )
    print("\nBoth products verified against scipy.")


if __name__ == "__main__":
    main()
