#!/usr/bin/env python
"""Multi-source BFS on a scale-free graph (the paper's §IV-A application).

Runs 64 concurrent BFS traversals as a sequence of boolean TS-SpGEMMs,
prints the per-level frontier/communication/runtime trace (Fig 12 a-c)
and the per-level speedup over a 2-D-SUMMA-driven BFS (Fig 12 d), and
cross-checks reachability against networkx.

Run:  python examples/multi_source_bfs.py
"""

import networkx as nx
import numpy as np

from repro.analysis import fmt_bytes, fmt_count, fmt_seconds, print_table
from repro.apps import msbfs
from repro.data import random_sources, rmat
from repro.mpi import SCALED_PERLMUTTER


def main() -> None:
    n, n_sources, p = 2048, 64, 8
    print(f"Graph: RMAT({n}) scale-free, avg degree 8; "
          f"{n_sources} BFS sources; p = {p} simulated ranks")

    adj = rmat(n, 8, seed=7)
    sources = random_sources(n, n_sources, seed=3)

    # --- the TS-SpGEMM-driven traversal --------------------------------
    result = msbfs(adj, sources, p, machine=SCALED_PERLMUTTER)
    print(f"\nBFS finished in {result.levels} levels, "
          f"total modelled time {fmt_seconds(result.total_runtime)}")

    # --- Fig 12(d): same loop driven by 2-D SUMMA ----------------------
    summa = msbfs(adj, sources, p, algorithm="SUMMA-2D", machine=SCALED_PERLMUTTER)
    rows = []
    for it, su in zip(result.iterations, summa.iterations):
        speedup = su.runtime / it.runtime if it.runtime > 0 else float("inf")
        rows.append(
            [
                it.iteration,
                fmt_count(it.frontier_nnz),
                fmt_count(it.comm_nnz),
                fmt_seconds(it.runtime),
                f"{speedup:.1f}x",
            ]
        )
    print_table(
        "Per-level trace (Fig 12): frontier, communicated nnz, runtime, "
        "speedup vs 2-D SUMMA",
        ["level", "frontier nnz", "comm nnz", "runtime", "speedup"],
        rows,
    )

    # --- verify against networkx --------------------------------------
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(zip(adj.row_ids().tolist(), adj.indices.tolist()))
    got = set(zip(result.visited.row_ids().tolist(), result.visited.indices.tolist()))
    expected = {
        (v, j)
        for j, s in enumerate(sources)
        for v in nx.node_connected_component(g, int(s))
    }
    assert got == expected, "reachability mismatch vs networkx!"
    counts = result.reachable_counts()
    print(f"\nReachability verified against networkx. "
          f"Average vertices reached per source: {counts.mean():.0f} "
          f"(min {counts.min()}, max {counts.max()}).")


if __name__ == "__main__":
    main()
