#!/usr/bin/env python
"""Strong-scaling study: simulator at small p, closed-form model beyond.

Sweeps all four distributed SpGEMM algorithms over simulated rank counts,
then extends the TS-SpGEMM curve with the §III-E analytic model out to the
paper's 4096 ranks — the workflow behind Figs 9-11.

Run:  python examples/scaling_study.py
"""

from repro.analysis import fmt_seconds, print_series, print_table
from repro.baselines import ALGORITHMS
from repro.data import load, tall_skinny
from repro.model import Workload, predict
from repro.mpi import SCALED_PERLMUTTER

SIM_PS = [1, 2, 4, 8, 16]
MODEL_PS = [8, 64, 256, 1024, 4096]
ALGOS = ["TS-SpGEMM", "SUMMA-2D", "SUMMA-3D", "PETSc-1D"]


def main() -> None:
    A = load("uk", scale=0.5, seed=0)  # Table V stand-in, reduced scale
    n = A.nrows
    d, sparsity = 128, 0.80
    B = tall_skinny(n, d, sparsity, seed=1)
    print(f"Workload: uk stand-in (n={n}, nnz={A.nnz:,}), "
          f"B {n}x{d} at {sparsity:.0%} sparsity")

    # --- simulated sweep ----------------------------------------------
    measured = {name: [] for name in ALGOS}
    for p in SIM_PS:
        for name in ALGOS:
            result = ALGOMAP[name](A, B, p, machine=SCALED_PERLMUTTER)
            measured[name].append(result.multiply_time)
    print_series(
        "Measured strong scaling (simulator, modelled seconds)",
        "p",
        SIM_PS,
        measured,
    )

    # --- analytic extension to paper scale ------------------------------
    w = Workload(n=18_520_486, kA=16.0, d=d, b_sparsity=sparsity)  # true uk
    modelled = {
        name: [predict(name, w, p).runtime for p in MODEL_PS] for name in ALGOS
    }
    print_series(
        "Analytic model at full uk-2002 scale (§III-E)",
        "p",
        MODEL_PS,
        modelled,
    )
    print(
        "\nExpected shape (paper, Figs 9-11): TS-SpGEMM fastest through"
        " ~1024 ranks; latency erodes its lead at extreme scale while"
        " SUMMA-3D's communication scales best."
    )


ALGOMAP = {name: ALGORITHMS[name] for name in ALGOS}

if __name__ == "__main__":
    main()
