#!/usr/bin/env python
"""Sparse force-directed graph embedding (the paper's §IV-B application).

Trains sparse Force2Vec embeddings of a community graph at several target
sparsities and reports the Fig 13 quantities: link-prediction accuracy,
total modelled runtime, communicated volume and the remote-tile share.

Run:  python examples/sparse_embedding.py
"""

from repro.analysis import fmt_bytes, fmt_seconds, print_table
from repro.apps import train_sparse_embedding
from repro.data import planted_partition


def main() -> None:
    n, d, p, epochs = 400, 16, 4, 25
    print(f"Graph: planted partition ({n} vertices, 5 communities); "
          f"embedding dim {d}; {epochs} epochs; p = {p} simulated ranks")

    adj, _ = planted_partition(n, 5, p_in=0.2, p_out=0.01, seed=11)

    rows = []
    for sparsity in (0.0, 0.25, 0.5, 0.75, 0.875):
        result = train_sparse_embedding(
            adj,
            p,
            d=d,
            sparsity=sparsity,
            epochs=epochs,
            seed=1,
            learning_rate=0.05,
        )
        remote_share = sum(e.remote_tiles for e in result.epochs)
        total_tiles = remote_share + sum(e.local_tiles for e in result.epochs)
        rows.append(
            [
                f"{sparsity:.0%}",
                f"{result.accuracy:.3f}",
                fmt_seconds(result.total_runtime),
                fmt_bytes(result.total_comm_bytes),
                f"{remote_share / total_tiles:.0%}" if total_tiles else "-",
                f"{result.Z.nnz:,}",
            ]
        )

    print_table(
        "Sparse embedding vs target sparsity (Fig 13)",
        [
            "Z sparsity",
            "link-pred acc",
            "runtime",
            "comm volume",
            "remote tiles",
            "nnz(Z)",
        ],
        rows,
    )
    print(
        "\nExpected shape (paper, Fig 13): accuracy degrades only a few "
        "points out to ~80% sparsity while runtime and communication fall."
    )


if __name__ == "__main__":
    main()
