#!/usr/bin/env python
"""Quickstart: one distributed TS-SpGEMM, inspected end to end.

Multiplies a scale-free square matrix by a tall-and-skinny 80 %-sparse
matrix (the paper's default workload, Table IV) on 16 simulated ranks,
verifies the product against a serial reference, and prints the modelled
time/traffic breakdown the library reports for every run.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.analysis import fmt_bytes, fmt_seconds, print_table
from repro.data import rmat, tall_skinny
from repro.mpi import SCALED_PERLMUTTER
from repro.sparse import spgemm


def main() -> None:
    n, d, p = 8192, 128, 16
    print(f"Workload: A = RMAT({n}, avg degree 16); "
          f"B = {n}x{d}, 80% sparse; p = {p} simulated ranks")

    A = rmat(n, 16, seed=0)
    B = tall_skinny(n, d, sparsity=0.80, seed=1)

    # --- the headline call -------------------------------------------
    # SCALED_PERLMUTTER restores the paper's volume-to-compute ratio for
    # laptop-sized matrices; see repro.mpi.costmodel for the rationale.
    result = repro.ts_spgemm(A, B, p, machine=SCALED_PERLMUTTER)

    # --- verify against a serial multiply ----------------------------
    expected, _ = spgemm(A, B)
    assert result.C.equal(expected), "distributed product mismatch!"
    print(f"\nProduct verified: C is {result.C.shape[0]}x{result.C.shape[1]} "
          f"with {result.C.nnz:,} nonzeros (serial reference matches).")

    # --- what the virtual machine measured ---------------------------
    d_ = result.diagnostics
    print_table(
        "Modelled run summary (Perlmutter-like profile)",
        ["metric", "value"],
        [
            ["multiply time", fmt_seconds(result.multiply_time)],
            ["  of which communication", fmt_seconds(result.comm_time)],
            ["bytes on the interconnect", fmt_bytes(result.comm_bytes())],
            ["local tiles", d_["local_tiles"]],
            ["remote tiles", d_["remote_tiles"]],
            ["diagonal tiles", d_["diagonal_tiles"]],
            ["empty tiles (skipped)", d_["empty_tiles"]],
            ["semiring multiplications", f"{d_['flops']:,}"],
            ["peak received-B bytes/rank", fmt_bytes(d_["peak_recv_b_bytes"])],
        ],
    )

    # --- per-phase traffic (what Figs 5-6 are made of) ----------------
    phases = result.report.phase_bytes()
    print_table(
        "Traffic by phase",
        ["phase", "bytes sent (all ranks)"],
        [[name, fmt_bytes(b)] for name, b in sorted(phases.items())],
    )

    # --- compare against one baseline at the same scale ---------------
    summa = repro.summa2d(A, B, p, machine=SCALED_PERLMUTTER)
    assert summa.C.equal(expected)
    speedup = summa.runtime / result.multiply_time
    print(f"\n2-D SUMMA on the same workload: "
          f"{fmt_seconds(summa.runtime)} -> TS-SpGEMM is {speedup:.1f}x faster.")


if __name__ == "__main__":
    main()
