"""Setuptools metadata for the TS-SpGEMM reproduction.

Classic ``setup.py`` rather than ``pyproject.toml`` because the execution
environment is offline and lacks the ``wheel`` package, so PEP 660
editable installs cannot build there.  ``pip install -e .`` works
wherever ``wheel`` is available (CI installs it first); offline, use
``python setup.py develop``.  The src-layout mapping below is what makes
either install work at all — without it the ``repro`` package is only
importable via a manual ``PYTHONPATH=src``.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single source of truth for the version: repro.__version__.
VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text(),
    re.MULTILINE,
).group(1)

setup(
    name="repro-ts-spgemm",
    version=VERSION,
    description=(
        "Reproduction of tiled distributed tall-and-skinny SpGEMM "
        "(conf_sc_RanawakaHBGTA24) on a simulated MPI machine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    extras_require={
        "test": ["pytest>=7", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "spmdlint=repro.analysis.lint.cli:main",
        ],
    },
)
