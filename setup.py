"""Legacy setuptools shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs cannot build; this shim lets ``pip install -e .``
fall back to the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
